//! Reactor figure: **fleet size vs throughput and memory** on the
//! poll-driven reactor backend, plus an event-granularity mixing probe.
//!
//! One [`osn_walks::WalkOrchestrator::run_reactor`]-style event loop (the
//! sliced [`osn_walks::ReactorWalkRun`] form, so probes can run between
//! event slices) drives fleets from 1 to 10k+ walkers against one batch
//! endpoint with latency and a bounded in-flight window. Per fleet size
//! the figure reports:
//!
//! * **throughput** — walk steps per virtual second on the endpoint clock
//!   (the paper's cost axis is queries, but wall-time-per-step is what a
//!   reactor backend buys: many walkers amortize each batch round-trip);
//! * **memory witnesses** — the loop's peak in-flight batches (bounded by
//!   the endpoint window, *not* the fleet size: the O(active batches)
//!   claim), peak queued node ids, and peak parked walkers;
//! * **events** — completion events processed, vs the fleet's total steps.
//!
//! The **mixing probe** feeds the first few walkers' trajectories into a
//! [`WindowedSplitRhat::exact`] window *as events complete* — the
//! event-granularity convergence check the reactor's restart policies
//! hook into. Degenerate slices (fleet entirely parked on in-flight
//! batches, window not yet filled) must yield `None`, never a fabricated
//! verdict; the figure counts both.
//!
//! A per-fleet **equivalence spot-check** reruns small fleets through
//! [`osn_walks::WalkOrchestrator::run_coalesced`] and asserts trace
//! bit-identity (under `Never` with no budget, traces are
//! schedule-independent).

use osn_client::{BatchConfig, SimulatedBatchOsn, SimulatedOsn};
use osn_datasets::{gplus_like, Scale};
use osn_estimate::WindowedSplitRhat;
use osn_graph::NodeId;
use osn_walks::{Cnrw, HistoryBackend, Never, RandomWalk, WalkOrchestrator};

use crate::output::{ExperimentResult, Series};

/// Configuration for the reactor figure.
#[derive(Clone, Debug)]
pub struct FigReactorConfig {
    /// Dataset scale for the Google Plus stand-in.
    pub scale: Scale,
    /// Fleet sizes to sweep.
    pub fleets: Vec<usize>,
    /// Step cap per walker.
    pub max_steps: usize,
    /// Batch size of the endpoint.
    pub batch: usize,
    /// In-flight window of the endpoint (the memory bound).
    pub in_flight: usize,
    /// Events granted per slice between probe evaluations.
    pub slice_events: usize,
    /// Chains the mixing probe tracks (clamped to the fleet size).
    pub probe_chains: usize,
    /// Exact (unclamped) probe window, in samples per chain.
    pub probe_window: usize,
    /// Fleets up to this size are spot-checked against the coalesced
    /// backend for trace bit-identity.
    pub equivalence_cap: usize,
    /// Experiment seed.
    pub seed: u64,
}

impl Default for FigReactorConfig {
    fn default() -> Self {
        FigReactorConfig {
            scale: Scale::Default,
            fleets: vec![1, 10, 100, 1_000, 10_000],
            max_steps: 64,
            batch: 64,
            in_flight: 4,
            slice_events: 32,
            probe_chains: 4,
            probe_window: 16,
            equivalence_cap: 1_000,
            seed: 0x2EAC_7012,
        }
    }
}

impl FigReactorConfig {
    /// Reduced profile for CI and quick runs.
    pub fn quick() -> Self {
        FigReactorConfig {
            scale: Scale::Test,
            fleets: vec![1, 10, 100],
            max_steps: 32,
            batch: 16,
            in_flight: 3,
            slice_events: 16,
            probe_chains: 3,
            probe_window: 8,
            equivalence_cap: 100,
            seed: 0x2EAC_7012,
        }
    }

    fn endpoint(
        &self,
        network: &std::sync::Arc<osn_graph::attributes::AttributedGraph>,
    ) -> SimulatedBatchOsn {
        // Latency makes the virtual clock a meaningful throughput
        // denominator; per-id latency rewards batching, as real APIs do.
        let batch = BatchConfig::new(self.batch)
            .with_in_flight(self.in_flight)
            .with_latency(0.01, 0.002)
            .with_per_id_latency(0.0002)
            .with_seed(self.seed ^ 0x0EAC);
        SimulatedBatchOsn::new(SimulatedOsn::new_shared(network.clone()), batch)
    }
}

fn make_walker(n: usize) -> impl Fn(usize, HistoryBackend) -> Box<dyn RandomWalk + Send> {
    move |i, backend| {
        Box::new(Cnrw::with_backend(NodeId(((i * 13) % n) as u32), backend))
            as Box<dyn RandomWalk + Send>
    }
}

/// One fleet's measurements.
struct FleetRow {
    steps: usize,
    events: usize,
    elapsed_secs: f64,
    peak_in_flight: usize,
    peak_queued: usize,
    peak_parked: usize,
    probe_verdicts: usize,
    probe_degenerate: usize,
    last_rhat: Option<f64>,
}

fn run_fleet(
    config: &FigReactorConfig,
    k: usize,
    n: usize,
    endpoint: &mut SimulatedBatchOsn,
) -> FleetRow {
    let orch = WalkOrchestrator::new(k, config.max_steps, config.seed);
    let mut run = orch.start_reactor(make_walker(n));
    let value = |v: NodeId| v.index() as f64;

    // Event-granularity mixing probe over the first few walkers.
    let chains = config.probe_chains.min(k);
    let mut probe = WindowedSplitRhat::exact(chains, config.probe_window);
    let mut fed: Vec<usize> = vec![0; chains];
    let mut verdicts = 0usize;
    let mut degenerate = 0usize;
    let mut last_rhat = None;

    while !run.done() {
        run.run_events(endpoint, &value, config.slice_events);
        for c in 0..chains {
            let trace = run.trace(c);
            for &v in &trace[fed[c]..] {
                probe.push(c, v.index() as f64);
            }
            fed[c] = trace.len();
        }
        match probe.evaluate() {
            Some(verdict) => {
                verdicts += 1;
                last_rhat = Some(verdict.rhat);
            }
            // All-parked slices and not-yet-full windows carry no mixing
            // evidence: the probe must say None, not fabricate a number.
            None => degenerate += 1,
        }
    }

    let stats = run.reactor_stats();
    FleetRow {
        steps: run.steps_taken(),
        events: run.events(),
        elapsed_secs: endpoint.clock().elapsed_secs(),
        peak_in_flight: stats.peak_in_flight,
        peak_queued: stats.peak_queued,
        peak_parked: stats.peak_parked,
        probe_verdicts: verdicts,
        probe_degenerate: degenerate,
        last_rhat,
    }
}

/// Run the reactor figure: fleet-size sweep, memory-bound witnesses,
/// event-granularity mixing probe, equivalence spot-checks.
pub fn run(config: &FigReactorConfig) -> ExperimentResult {
    let network = std::sync::Arc::new(gplus_like(config.scale, config.seed).network);
    let n = network.graph.node_count();

    let mut rows = Vec::new();
    let mut equivalence_checked = 0usize;
    for &k in &config.fleets {
        let mut endpoint = config.endpoint(&network);
        let row = run_fleet(config, k, n, &mut endpoint);

        if k <= config.equivalence_cap {
            // Under `Never` with no budget, traces are schedule-independent:
            // the coalesced backend must reproduce them bit-for-bit.
            let orch = WalkOrchestrator::new(k, config.max_steps, config.seed);
            let mut subject = config.endpoint(&network);
            let coalesced =
                orch.run_coalesced(&mut subject, make_walker(n), |v| v.index() as f64, &Never);
            let mut reference = config.endpoint(&network);
            let reactor =
                orch.run_reactor(&mut reference, make_walker(n), |v| v.index() as f64, &Never);
            assert_eq!(
                coalesced.trace.per_walker, reactor.trace.per_walker,
                "fleet {k}: reactor diverged from coalesced"
            );
            equivalence_checked += 1;
        }
        rows.push((k, row));
    }

    let xs: Vec<f64> = rows.iter().map(|(k, _)| *k as f64).collect();
    let total_steps: usize = rows.iter().map(|(_, r)| r.steps).sum();
    let max_fleet = config.fleets.iter().copied().max().unwrap_or(0);
    let max_peak_in_flight = rows
        .iter()
        .map(|(_, r)| r.peak_in_flight)
        .max()
        .unwrap_or(0);

    let mut result = ExperimentResult::new(
        "fig_reactor",
        "Reactor backend: fleet size vs throughput and memory — poll-driven walkers \
         parked on in-flight batches, one event loop, no threads",
        "Fleet Size (walkers)",
        "Steps per Virtual Second",
    )
    .with_note(format!(
        "graph: {} nodes; batch size {}, in-flight window {}, {} steps/walker, \
         {} events/slice",
        n, config.batch, config.in_flight, config.max_steps, config.slice_events
    ))
    .with_note(format!(
        "memory bound: peak in-flight batches {} <= window {} at every fleet size up to \
         {max_fleet} walkers — loop memory tracks active batches, not fleet size ({} total \
         steps swept)",
        max_peak_in_flight, config.in_flight, total_steps
    ))
    .with_note(format!(
        "equivalence spot-check: {equivalence_checked} fleet(s) <= {} walkers replayed \
         through the coalesced backend with bit-identical traces",
        config.equivalence_cap
    ))
    .with_note(format!(
        "mixing probe: WindowedSplitRhat::exact({} chains, window {}) fed at event \
         granularity; degenerate slices (parked fleet / unfilled window) report None, \
         never a fabricated verdict",
        config.probe_chains, config.probe_window
    ));

    result.series.push(Series::new(
        "steps per virtual second",
        xs.clone(),
        rows.iter()
            .map(|(_, r)| {
                if r.elapsed_secs > 0.0 {
                    r.steps as f64 / r.elapsed_secs
                } else {
                    0.0
                }
            })
            .collect(),
    ));
    result.series.push(Series::new(
        "events",
        xs.clone(),
        rows.iter().map(|(_, r)| r.events as f64).collect(),
    ));
    result.series.push(Series::new(
        "peak in-flight batches",
        xs.clone(),
        rows.iter().map(|(_, r)| r.peak_in_flight as f64).collect(),
    ));
    result.series.push(Series::new(
        "peak queued ids",
        xs.clone(),
        rows.iter().map(|(_, r)| r.peak_queued as f64).collect(),
    ));
    result.series.push(Series::new(
        "peak parked walkers",
        xs.clone(),
        rows.iter().map(|(_, r)| r.peak_parked as f64).collect(),
    ));
    result.series.push(Series::new(
        "probe verdicts",
        xs.clone(),
        rows.iter().map(|(_, r)| r.probe_verdicts as f64).collect(),
    ));
    result.series.push(Series::new(
        "probe degenerate slices",
        xs.clone(),
        rows.iter()
            .map(|(_, r)| r.probe_degenerate as f64)
            .collect(),
    ));
    result.series.push(Series::new(
        "final event-granularity split-Rhat",
        xs,
        rows.iter()
            .map(|(_, r)| r.last_rhat.unwrap_or(f64::NAN))
            .collect(),
    ));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_meets_the_acceptance_bars() {
        let config = FigReactorConfig::quick();
        let r = run(&config);
        assert_eq!(r.series.len(), 8);

        // The memory bound: peak in-flight never exceeds the window.
        let peaks = r.series_by_label("peak in-flight batches").unwrap();
        assert!(peaks.y.iter().all(|&p| p as usize <= config.in_flight));

        // Parked walkers scale with the fleet: the 100-walker fleet parks
        // far more than the single walker.
        let parked = r.series_by_label("peak parked walkers").unwrap();
        assert!(parked.y.last().unwrap() > &10.0);
        assert!(parked.y.first().unwrap() <= &1.0);

        // The mixing probe produced real verdicts on multi-chain fleets
        // and honestly reported degenerate slices on the 1-walker fleet
        // (a single chain can never fill two windows).
        let verdicts = r.series_by_label("probe verdicts").unwrap();
        assert_eq!(verdicts.y[0], 0.0, "one chain cannot evaluate");
        assert!(
            verdicts.y.iter().skip(1).any(|&v| v > 0.0),
            "no multi-chain fleet ever produced a verdict: {:?}",
            verdicts.y
        );
        let degenerate = r.series_by_label("probe degenerate slices").unwrap();
        assert!(degenerate.y[0] > 0.0);

        // Equivalence spot-checks ran (they assert internally).
        assert!(r
            .notes
            .iter()
            .any(|n| n.contains("bit-identical traces") && n.starts_with("equivalence")));
    }
}
