//! Scale figure: **compact vs plain substrate** — walker throughput and
//! resident topology bytes as the stand-in grows toward web scale.
//!
//! The paper's crawls fit comfortably in an uncompressed CSR; the web-scale
//! tiers (PR 10) do not. This experiment sweeps the streamed
//! [`osn_graph::generators::web_graph`] stand-in over increasing sizes and,
//! at each size, measures the two numbers that decide whether the
//! compressed substrate is usable for sampling:
//!
//! * **CNRW steps/sec** over the plain [`osn_graph::CsrGraph`] versus the
//!   same seed over the delta-varint
//!   [`CompactCsr`](osn_graph::compact::CompactCsr) (per-node decode
//!   through the client's slice cache). Traces are bit-identical — the
//!   equivalence `runner` tests pin — so the throughput gap is pure decode
//!   overhead.
//! * **Resident topology MiB** of each representation, plus the
//!   compression ratio (plain ÷ compact). The heavy-tailed,
//!   community-local stand-in compresses ≥ 2× (pinned by this module's
//!   test), matching real OSN id locality.
//!
//! Tiers whose plain CSR would not fit the measurement budget are run
//! compact-only (the plain columns report `NaN`); the `--web` tier of the
//! `repro` driver adds the ~10⁸-edge stand-in that exists *only* in
//! compact form.

use std::sync::Arc;
use std::time::Instant;

use osn_graph::attributes::AttributedGraph;
use osn_graph::generators::{web_graph_compact, WebGraphConfig};

use crate::algorithms::Algorithm;
use crate::output::{ExperimentResult, Series};
use crate::runner::{Deadline, TrialPlan};

/// Configuration for the scale figure.
#[derive(Clone, Debug)]
pub struct FigScaleConfig {
    /// Node counts to sweep (each tier's edge target is
    /// `nodes × avg_degree / 2`).
    pub nodes: Vec<usize>,
    /// Average degree of every tier.
    pub avg_degree: f64,
    /// CNRW steps per throughput measurement.
    pub steps: usize,
    /// Experiment seed (graph stream and walk derive from it).
    pub seed: u64,
    /// Tiers above this node count skip the plain-CSR measurement and
    /// report `NaN` in the plain columns (the compact columns still run).
    pub plain_node_cap: usize,
    /// Soft wall-clock guard: once exceeded, remaining tiers are skipped
    /// with a note instead of running unbounded. `None` = unguarded.
    pub max_secs: Option<u64>,
}

impl Default for FigScaleConfig {
    fn default() -> Self {
        FigScaleConfig {
            nodes: vec![20_000, 100_000, 500_000],
            avg_degree: 20.0,
            steps: 200_000,
            seed: 0x5CA1_E5EED,
            plain_node_cap: 4_000_000,
            max_secs: None,
        }
    }
}

impl FigScaleConfig {
    /// Reduced profile for CI and quick runs.
    pub fn quick() -> Self {
        FigScaleConfig {
            nodes: vec![2_000, 8_000],
            steps: 20_000,
            ..Default::default()
        }
    }

    /// The `--full` profile: adds a ~2×10⁷-edge tier.
    pub fn full() -> Self {
        let mut config = FigScaleConfig::default();
        config.nodes.push(2_000_000);
        config
    }

    /// Append the ~10⁸-edge web tier (4M nodes at average degree 50),
    /// which runs compact-only — its plain CSR is exactly the footprint
    /// the compressed substrate exists to avoid.
    #[must_use]
    pub fn with_web_tier(mut self) -> Self {
        self.nodes.push(4_000_000);
        self
    }

    /// The generator shape of one tier: avg degree 50 for the 4M-node web
    /// tier (hitting ~10⁸ edges), the configured degree elsewhere;
    /// community count scales with size so locality stays realistic.
    fn tier_config(&self, nodes: usize) -> WebGraphConfig {
        let avg_degree = if nodes >= 4_000_000 {
            50.0
        } else {
            self.avg_degree
        };
        let communities = (nodes / 2_000).clamp(8, 2_048);
        WebGraphConfig::new(nodes, avg_degree, self.seed).with_communities(communities)
    }
}

/// Measured numbers of one tier.
struct TierRow {
    edges: f64,
    plain_steps_per_sec: f64,
    compact_steps_per_sec: f64,
    plain_mib: f64,
    compact_mib: f64,
    ratio: f64,
}

/// Time one CNRW trial of `steps` steps and return steps/sec.
fn throughput(plan: &TrialPlan, steps: usize, seed: u64) -> f64 {
    let plan = plan.clone().with_max_steps(steps);
    let t0 = Instant::now();
    let trace = plan.run(&Algorithm::Cnrw, seed);
    trace.len() as f64 / t0.elapsed().as_secs_f64().max(1e-9)
}

/// Run one tier: build compact (streamed), optionally materialize plain,
/// walk both.
fn run_tier(config: &FigScaleConfig, nodes: usize) -> TierRow {
    let tier = config.tier_config(nodes);
    let compact = Arc::new(web_graph_compact(&tier).expect("valid tier config"));
    let arcs = 2.0 * compact.edge_count() as f64;
    // The uncompressed footprint `compression_ratio` is measured against:
    // 8-byte offsets per node boundary, 4-byte neighbor entries.
    let plain_bytes = 8.0 * (nodes as f64 + 1.0) + 4.0 * arcs;
    let mib = 1024.0 * 1024.0;
    let mut row = TierRow {
        edges: compact.edge_count() as f64,
        plain_steps_per_sec: f64::NAN,
        compact_steps_per_sec: 0.0,
        plain_mib: plain_bytes / mib,
        compact_mib: compact.byte_len() as f64 / mib,
        ratio: compact.compression_ratio(),
    };
    row.compact_steps_per_sec = throughput(
        &TrialPlan::from_compact(Arc::clone(&compact)),
        config.steps,
        config.seed,
    );
    if nodes <= config.plain_node_cap {
        let plain = compact.to_csr().expect("compact snapshots decompress");
        let plan = TrialPlan::new(Arc::new(AttributedGraph::bare(plain)));
        row.plain_steps_per_sec = throughput(&plan, config.steps, config.seed);
    }
    row
}

/// Run the scale figure (see module docs).
pub fn run(config: &FigScaleConfig) -> ExperimentResult {
    let deadline = match config.max_secs {
        Some(secs) => Deadline::after_secs(secs),
        None => Deadline::unlimited(),
    };
    let mut result = ExperimentResult::new(
        "fig_scale",
        "Web-scale substrate: compact vs plain CSR",
        "Edges",
        "steps/sec | resident MiB | ratio",
    )
    .with_note(format!(
        "streamed web stand-in, avg degree {}, CNRW {} steps per measurement, seed {:#x}",
        config.avg_degree, config.steps, config.seed
    ))
    .with_note(
        "walks over the compact substrate are bit-identical per seed to the plain CSR; \
         the throughput gap is pure varint-decode overhead"
            .to_string(),
    );
    let mut rows = Vec::new();
    for &nodes in &config.nodes {
        if deadline.exceeded() {
            result = result.with_note(format!(
                "wall-clock guard ({}s) exceeded: skipped the {nodes}-node tier and beyond",
                config.max_secs.unwrap_or(0)
            ));
            break;
        }
        if nodes > config.plain_node_cap {
            result = result.with_note(format!(
                "{nodes}-node tier ran compact-only (plain CSR past the {}-node cap)",
                config.plain_node_cap
            ));
        }
        rows.push(run_tier(config, nodes));
    }
    let xs: Vec<f64> = rows.iter().map(|r| r.edges).collect();
    let col = |f: fn(&TierRow) -> f64| rows.iter().map(f).collect::<Vec<f64>>();
    result
        .with_series(Series::new(
            "CNRW steps/s (plain)",
            xs.clone(),
            col(|r| r.plain_steps_per_sec),
        ))
        .with_series(Series::new(
            "CNRW steps/s (compact)",
            xs.clone(),
            col(|r| r.compact_steps_per_sec),
        ))
        .with_series(Series::new(
            "resident MiB (plain)",
            xs.clone(),
            col(|r| r.plain_mib),
        ))
        .with_series(Series::new(
            "resident MiB (compact)",
            xs.clone(),
            col(|r| r.compact_mib),
        ))
        .with_series(Series::new("compression ratio", xs, col(|r| r.ratio)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_profile_reports_all_columns() {
        let r = run(&FigScaleConfig::quick());
        assert_eq!(r.series.len(), 5);
        for s in &r.series {
            assert_eq!(s.len(), 2, "{}", s.label);
        }
        let ratio = r.series_by_label("compression ratio").unwrap();
        for (&edges, &ratio) in ratio.x.iter().zip(&ratio.y) {
            assert!(
                ratio >= 2.0,
                "heavy-tailed stand-in must compress ≥ 2× ({edges} edges: {ratio})"
            );
        }
        for label in ["CNRW steps/s (plain)", "CNRW steps/s (compact)"] {
            let s = r.series_by_label(label).unwrap();
            assert!(s.y.iter().all(|&v| v > 0.0), "{label}: {:?}", s.y);
        }
        // Packed stays smaller than plain at every tier.
        let plain = r.series_by_label("resident MiB (plain)").unwrap();
        let compact = r.series_by_label("resident MiB (compact)").unwrap();
        for (p, c) in plain.y.iter().zip(&compact.y) {
            assert!(c < p);
        }
    }

    #[test]
    fn deadline_guard_skips_remaining_tiers() {
        let mut config = FigScaleConfig::quick();
        config.max_secs = Some(0);
        std::thread::sleep(std::time::Duration::from_millis(5));
        let r = run(&config);
        assert!(r.series[0].is_empty() || r.series[0].len() < config.nodes.len());
        assert!(r.notes.iter().any(|n| n.contains("wall-clock guard")));
    }
}
