//! Service-layer figure: **multi-tenant fair-share sampling vs sequential
//! execution** at one fixed shared budget, plus a kill/resume self-check.
//!
//! A [`osn_service::SessionServer`] runs a seeded multi-tenant workload
//! (weighted tenants, mixed job shapes) against one shared batch endpoint
//! with a hard unique-query budget. The figure reports, per tenant, the
//! configured **weight share** next to the realized **charged-query
//! share** — the acceptance bar is every tenant within 10% relative —
//! together with the cache hits each tenant rode and the steps it took.
//!
//! Two arms run the *identical* job set:
//!
//! * **service** — interleaved scheduling slices under weighted fair
//!   share: every backlogged job advances, so the budget is spread across
//!   the whole fleet;
//! * **sequential** — the same scheduler with an effectively infinite
//!   slice, so each picked job runs start-to-finish alone (the
//!   one-job-at-a-time baseline): early jobs spend freely and late jobs
//!   starve once the shared budget is gone.
//!
//! Both arms share the endpoint cache, so the comparison isolates
//! *scheduling*: fleet NRMSE (root-mean-square relative estimation error
//! across all jobs; a job with no estimate scores 1.0) should be lower in
//! the service arm.
//!
//! The run also kills a third server mid-flight, snapshots it through the
//! `osn-serde` text form, resumes into a fresh endpoint, and verifies the
//! completed state is **byte-identical** to the uninterrupted service arm.

use osn_client::{BatchConfig, RateLimitConfig, SimulatedBatchOsn, SimulatedOsn};
use osn_datasets::{gplus_like, Scale};
use osn_serde::Value;
use osn_service::traffic::{populate, TrafficConfig};
use osn_service::{JobState, ServerConfig, SessionServer};

use crate::output::{ExperimentResult, Series};

/// Configuration for the service figure.
#[derive(Clone, Debug)]
pub struct FigServiceConfig {
    /// Dataset scale for the Google Plus stand-in.
    pub scale: Scale,
    /// Simulated tenants (weights cycle through
    /// [`osn_service::traffic::WEIGHT_CYCLE`]).
    pub tenants: usize,
    /// Jobs submitted per tenant.
    pub jobs_per_tenant: usize,
    /// Shared unique-query budget all jobs contend for.
    pub budget: u64,
    /// Scheduling rounds per fair-share slice.
    pub rounds_per_slice: usize,
    /// Per-walker step cap upper bound of generated jobs.
    pub max_steps: usize,
    /// Fleet-size upper bound of generated jobs.
    pub max_walkers: usize,
    /// Slices to run before killing the resume-check server.
    pub kill_after_slices: usize,
    /// Experiment seed.
    pub seed: u64,
}

impl Default for FigServiceConfig {
    fn default() -> Self {
        // Demand must dwarf the budget: fair share is only exact while
        // every tenant stays backlogged, so each tenant's potential steps
        // (jobs x walkers x steps) far exceeds its charged-query target.
        FigServiceConfig {
            scale: Scale::Default,
            tenants: 12,
            jobs_per_tenant: 4,
            budget: 3_000,
            rounds_per_slice: 2,
            max_steps: 600,
            max_walkers: 2,
            kill_after_slices: 120,
            seed: 0x5E41_11CE,
        }
    }
}

impl FigServiceConfig {
    /// Reduced profile for CI and quick runs.
    pub fn quick() -> Self {
        FigServiceConfig {
            scale: Scale::Test,
            tenants: 3,
            jobs_per_tenant: 3,
            budget: 200,
            rounds_per_slice: 1,
            max_steps: 250,
            max_walkers: 2,
            kill_after_slices: 25,
            seed: 0x5E41_11CE,
        }
    }

    /// The endpoint both arms (and the resume check) construct: shared
    /// budget, rate limit, heterogeneous latency, whole-request and per-id
    /// failure injection — every realism knob of the batch model.
    fn endpoint(
        &self,
        network: &std::sync::Arc<osn_graph::attributes::AttributedGraph>,
    ) -> SimulatedBatchOsn {
        let batch = BatchConfig::new(8)
            .with_in_flight(4)
            .with_rate_limit(RateLimitConfig {
                calls_per_window: 120,
                window_secs: 1.0,
            })
            .with_latency(0.002, 0.001)
            .with_per_id_latency(0.0002)
            .with_failure_every(31)
            .with_drop_node_every(41)
            .with_seed(self.seed ^ 0xBA7C);
        SimulatedBatchOsn::configured(
            SimulatedOsn::new_shared(network.clone()),
            batch,
            Some(self.budget),
        )
    }

    fn traffic(&self) -> TrafficConfig {
        TrafficConfig::new(self.tenants, self.jobs_per_tenant)
            .with_seed(self.seed)
            .with_max_steps(self.max_steps)
            .with_max_walkers(self.max_walkers)
        // Backlogged arrivals (the default): every job is admissible at
        // t=0, the regime in which fair share is exact.
    }

    fn server(
        &self,
        network: &std::sync::Arc<osn_graph::attributes::AttributedGraph>,
        rounds_per_slice: usize,
    ) -> SessionServer {
        let mut server = SessionServer::new(
            self.endpoint(network),
            ServerConfig::new().with_rounds_per_slice(rounds_per_slice),
        );
        populate(&mut server, &self.traffic());
        server
    }
}

/// Root-mean-square relative estimation error across every job; a job that
/// settled without an estimate (refused, or no usable sample) scores 1.0.
fn fleet_nrmse(server: &SessionServer) -> f64 {
    let graph = &server.network().graph;
    let mut sq_sum = 0.0;
    let mut n = 0usize;
    for id in 0..server.job_count() {
        let rel = match server.job_result(id).and_then(|r| r.estimate) {
            Some(est) => {
                let truth = server.job_spec(id).estimand.truth(graph);
                ((est - truth) / truth).abs()
            }
            None => 1.0,
        };
        sq_sum += rel * rel;
        n += 1;
    }
    (sq_sum / n as f64).sqrt()
}

/// Run the service figure: fair-share table, NRMSE comparison, resume
/// self-check.
pub fn run(config: &FigServiceConfig) -> ExperimentResult {
    let network = std::sync::Arc::new(gplus_like(config.scale, config.seed).network);

    // Service arm.
    let mut service = config.server(&network, config.rounds_per_slice);
    service.run_to_completion();

    // Sequential arm: same jobs, same budget, one job at a time.
    let mut sequential = config.server(&network, usize::MAX / 2);
    sequential.run_to_completion();

    // Kill/resume self-check against the service arm.
    let resume_ok = {
        let mut killed = config.server(&network, config.rounds_per_slice);
        for _ in 0..config.kill_after_slices {
            if !killed.step() {
                break;
            }
        }
        let text = killed
            .snapshot()
            .expect("snapshot at slice boundary")
            .to_pretty();
        let parsed = Value::parse(&text).expect("snapshot text parses");
        let mut resumed = SessionServer::resume(
            config.endpoint(&network),
            ServerConfig::new().with_rounds_per_slice(config.rounds_per_slice),
            &parsed,
        )
        .expect("snapshot resumes");
        resumed.run_to_completion();
        resumed.snapshot().expect("final snapshot").to_pretty()
            == service.snapshot().expect("final snapshot").to_pretty()
    };

    let weight_total: f64 = service.tenants().iter().map(|t| t.weight).sum();
    let charged_total: u64 = (0..service.tenants().len())
        .map(|t| service.tenant_stats(t).charged)
        .sum();
    let xs: Vec<f64> = (0..service.tenants().len()).map(|t| t as f64).collect();
    let weight_shares: Vec<f64> = service
        .tenants()
        .iter()
        .map(|t| t.weight / weight_total)
        .collect();
    let charged_shares: Vec<f64> = (0..service.tenants().len())
        .map(|t| service.tenant_stats(t).charged as f64 / charged_total as f64)
        .collect();
    let max_rel_dev = weight_shares
        .iter()
        .zip(&charged_shares)
        .map(|(w, c)| (c - w).abs() / w)
        .fold(0.0f64, f64::max);

    let refused = |server: &SessionServer| {
        (0..server.job_count())
            .filter(|&id| server.job_state(id) == JobState::Refused)
            .count()
    };
    let service_nrmse = fleet_nrmse(&service);
    let sequential_nrmse = fleet_nrmse(&sequential);

    let mut result = ExperimentResult::new(
        "fig_service",
        "Sampling-as-a-service: weighted fair-share budget scheduling across tenants — \
         charged-query shares vs configured weight shares, one shared budget",
        "Tenant",
        "Share of Charged Queries",
    )
    .with_note(format!(
        "graph: {} nodes; {} tenants x {} jobs; shared budget {}; {} rounds/slice",
        network.graph.node_count(),
        config.tenants,
        config.jobs_per_tenant,
        config.budget,
        config.rounds_per_slice
    ))
    .with_note(format!(
        "fair share: max relative deviation of charged share from weight share = {:.1}% \
         (acceptance bar: 10%) — {}",
        max_rel_dev * 100.0,
        if max_rel_dev <= 0.10 { "PASS" } else { "FAIL" }
    ))
    .with_note(format!(
        "fleet NRMSE at shared budget {}: service (fair-share interleaving) {:.4} vs \
         sequential (one job at a time) {:.4} — {}; sequential starved {} of {} jobs",
        config.budget,
        service_nrmse,
        sequential_nrmse,
        if service_nrmse < sequential_nrmse {
            "service wins"
        } else {
            "sequential wins"
        },
        refused(&sequential),
        sequential.job_count()
    ))
    .with_note(format!(
        "kill-at-slice-{}/resume check: completed state {} the uninterrupted run's \
         (byte-compared osn-serde snapshots)",
        config.kill_after_slices,
        if resume_ok {
            "is BYTE-IDENTICAL to"
        } else {
            "DIVERGED from"
        }
    ))
    .with_note(format!(
        "virtual time: service arm {:.2}s on the endpoint clock; endpoint charged {} unique \
         queries total",
        service.elapsed_secs(),
        charged_total
    ));

    result
        .series
        .push(Series::new("weight share", xs.clone(), weight_shares));
    result
        .series
        .push(Series::new("charged share", xs.clone(), charged_shares));
    result.series.push(Series::new(
        "cache hits ridden",
        xs.clone(),
        (0..service.tenants().len())
            .map(|t| service.tenant_stats(t).cache_hits as f64)
            .collect(),
    ));
    result.series.push(Series::new(
        "steps",
        xs,
        (0..service.tenants().len())
            .map(|t| service.tenant_stats(t).steps as f64)
            .collect(),
    ));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_meets_the_acceptance_bars() {
        let r = run(&FigServiceConfig::quick());
        assert_eq!(r.series.len(), 4);
        let weight = r.series_by_label("weight share").unwrap();
        let charged = r.series_by_label("charged share").unwrap();
        assert_eq!(weight.len(), charged.len());
        // Fair share: every tenant within 10% relative of its weight share.
        for (w, c) in weight.y.iter().zip(&charged.y) {
            let rel = (c - w).abs() / w;
            assert!(rel <= 0.10, "charged share {c:.3} vs weight share {w:.3}");
        }
        // The resume self-check must report byte-identity, and the NRMSE
        // comparison must favor the fair-share service arm.
        assert!(
            r.notes.iter().any(|n| n.contains("BYTE-IDENTICAL")),
            "resume check failed: {:?}",
            r.notes
        );
        assert!(
            r.notes.iter().any(|n| n.contains("service wins")),
            "service arm should beat sequential at a shared budget: {:?}",
            r.notes
        );
    }
}
