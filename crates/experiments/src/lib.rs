//! # osn-experiments
//!
//! The experiment harness regenerating **every table and figure** of the
//! paper's evaluation (§6). Each `figN` module exposes a config struct (with
//! paper-faithful defaults and a `quick()` profile for CI) and a `run`
//! function returning an [`output::ExperimentResult`] that renders as a
//! markdown table, CSV, or JSON.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`table1`] | Table 1 — dataset summary statistics |
//! | [`fig6`] | Figure 6 — Google Plus: avg-degree relative error vs query cost, 5 algorithms |
//! | [`fig6_parallel`] | Figure 6, parallel variant — k concurrent CNRW walkers on one shared budget |
//! | [`fig6_batch`] | Figure 6, batched variant — coalescing batch dispatcher vs independent walkers |
//! | [`fig6_steal`] | Figure 6, work-stealing variant — frontier restarts vs never, NRMSE at fixed budget |
//! | [`fig7`] | Figure 7 — Facebook KL / ℓ2 / error vs cost; Youtube error vs cost |
//! | [`fig8`] | Figure 8 — sampling distribution vs theoretical, nodes ordered by degree |
//! | [`fig9`] | Figure 9 — Yelp: GNRW grouping strategies per aggregate |
//! | [`fig10`] | Figure 10 — clustered graph: KL / ℓ2 / error vs cost |
//! | [`fig11`] | Figure 11 — barbell sweep: KL / ℓ2 / error vs graph size |
//! | [`theorem3`] | Theorem 3 — barbell escape: hitting times and bound |
//! | [`ablation`] | §3.2 ablation — edge-keyed vs node-keyed circulation |
//! | [`fig_service`] | Service extension — multi-tenant fair-share scheduling vs sequential at one shared budget |
//! | [`fig_reactor`] | Reactor extension — fleet size vs throughput/memory on the poll-driven backend, with an event-granularity mixing probe |
//! | [`fig_evolving`] | Evolving-graph extension — delta-corrected continuation vs restart-from-scratch on a mutating network |
//! | [`fig_scale`] | Web-scale extension — walker throughput and resident bytes, compact vs plain substrate, as the stand-in grows |
//!
//! All runs are seeded and deterministic (including under parallelism: trial
//! seeds are derived, not scheduler-dependent). The one exception is
//! [`fig6_parallel`] with more than one walker, where a shared atomic budget
//! necessarily makes each walker's cut-off point scheduling-dependent; its
//! trial seeds and budget totals remain exact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod algorithms;
pub mod fig10;
pub mod fig11;
pub mod fig6;
pub mod fig6_batch;
pub mod fig6_parallel;
pub mod fig6_steal;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod fig_evolving;
pub mod fig_reactor;
pub mod fig_scale;
pub mod fig_service;
pub mod output;
pub mod runner;
pub mod sweeps;
pub mod table1;
pub mod theorem3;

pub use algorithms::{Algorithm, GroupingSpec};
pub use output::{ExperimentResult, Series};
pub use runner::{parallel_map, trial_seed, Deadline, TrialPlan};
