//! Experiment result containers and renderers (markdown / CSV / JSON).
//!
//! JSON encoding/decoding is hand-rolled for the two fixed container shapes
//! below — the build environment has no registry access for `serde`, and the
//! schema (strings + `f64` arrays) is small enough that a bespoke
//! writer/parser is simpler than vendoring a serialization framework.

/// One labeled curve: `(x, y)` pairs (a line in one of the paper's plots,
/// or a column group in a table).
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Legend label (e.g. `"CNRW"`).
    pub label: String,
    /// X coordinates (query cost, graph size, node rank, …).
    pub x: Vec<f64>,
    /// Y values (relative error, KL divergence, probability, …).
    pub y: Vec<f64>,
}

impl Series {
    /// Build a series, checking lengths agree.
    ///
    /// # Panics
    /// Panics if `x` and `y` lengths differ.
    pub fn new(label: impl Into<String>, x: Vec<f64>, y: Vec<f64>) -> Self {
        assert_eq!(x.len(), y.len(), "series coordinate length mismatch");
        Series {
            label: label.into(),
            x,
            y,
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Mean of the y values (NaN when empty).
    pub fn mean_y(&self) -> f64 {
        if self.y.is_empty() {
            return f64::NAN;
        }
        self.y.iter().sum::<f64>() / self.y.len() as f64
    }

    /// Area-under-curve by trapezoid rule — a single-number summary used to
    /// compare algorithms across a whole budget sweep ("lower error curve").
    pub fn auc(&self) -> f64 {
        if self.len() < 2 {
            return 0.0;
        }
        self.x
            .windows(2)
            .zip(self.y.windows(2))
            .map(|(xs, ys)| (xs[1] - xs[0]) * (ys[0] + ys[1]) / 2.0)
            .sum()
    }
}

/// A complete experiment artifact: identifier, axis names, all series.
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentResult {
    /// Identifier matching the paper ("fig6", "table1", …).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// All curves.
    pub series: Vec<Series>,
    /// Free-form notes: parameters, substitutions, caveats.
    pub notes: Vec<String>,
}

impl ExperimentResult {
    /// New result shell.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        ExperimentResult {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a series (builder style).
    #[must_use]
    pub fn with_series(mut self, s: Series) -> Self {
        self.series.push(s);
        self
    }

    /// Append a note (builder style).
    #[must_use]
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Find a series by label.
    pub fn series_by_label(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Render as a GitHub-flavored markdown table: one row per x value, one
    /// column per series (the form EXPERIMENTS.md embeds).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {} — {}\n\n", self.id, self.title));
        for note in &self.notes {
            out.push_str(&format!("> {note}\n"));
        }
        if !self.notes.is_empty() {
            out.push('\n');
        }
        if self.series.is_empty() {
            out.push_str("(no data)\n");
            return out;
        }
        // Header.
        out.push_str(&format!("| {} |", self.x_label));
        for s in &self.series {
            out.push_str(&format!(" {} |", s.label));
        }
        out.push('\n');
        out.push_str("|---|");
        for _ in &self.series {
            out.push_str("---|");
        }
        out.push('\n');
        // Rows, keyed by the union of x values in order of first series.
        let xs = &self.series[0].x;
        for (i, &x) in xs.iter().enumerate() {
            out.push_str(&format!("| {} |", trim_float(x)));
            for s in &self.series {
                match s.y.get(i) {
                    Some(&y) => out.push_str(&format!(" {} |", format_sig(y))),
                    None => out.push_str(" — |"),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Render as CSV: `x,label1,label2,...` header then one row per x.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.x_label.replace(',', ";"));
        for s in &self.series {
            out.push(',');
            out.push_str(&s.label.replace(',', ";"));
        }
        out.push('\n');
        if let Some(first) = self.series.first() {
            for (i, &x) in first.x.iter().enumerate() {
                out.push_str(&format!("{x}"));
                for s in &self.series {
                    out.push(',');
                    if let Some(&y) = s.y.get(i) {
                        out.push_str(&format!("{y}"));
                    }
                }
                out.push('\n');
            }
        }
        out
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"id\": {},\n", json::string(&self.id)));
        out.push_str(&format!("  \"title\": {},\n", json::string(&self.title)));
        out.push_str(&format!(
            "  \"x_label\": {},\n",
            json::string(&self.x_label)
        ));
        out.push_str(&format!(
            "  \"y_label\": {},\n",
            json::string(&self.y_label)
        ));
        out.push_str("  \"series\": [");
        for (i, s) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            out.push_str(&format!("      \"label\": {},\n", json::string(&s.label)));
            out.push_str(&format!("      \"x\": {},\n", json::numbers(&s.x)));
            out.push_str(&format!("      \"y\": {}\n", json::numbers(&s.y)));
            out.push_str("    }");
        }
        if !self.series.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str("  \"notes\": [");
        for (i, n) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json::string(n));
        }
        out.push_str("]\n}");
        out
    }

    /// Parse the JSON produced by [`to_json`](Self::to_json).
    ///
    /// # Errors
    /// Returns a human-readable message when `input` is not a well-formed
    /// experiment-result document.
    pub fn from_json(input: &str) -> Result<Self, String> {
        let value = json::parse(input)?;
        let obj = value.as_object()?;
        let series_values = json::get(obj, "series")?.as_array()?;
        let mut series = Vec::with_capacity(series_values.len());
        for sv in series_values {
            let so = sv.as_object()?;
            let x = json::get(so, "x")?.as_numbers()?;
            let y = json::get(so, "y")?.as_numbers()?;
            if x.len() != y.len() {
                return Err("series coordinate length mismatch".into());
            }
            series.push(Series {
                label: json::get(so, "label")?.as_string()?,
                x,
                y,
            });
        }
        let notes = json::get(obj, "notes")?
            .as_array()?
            .iter()
            .map(|v| v.as_string())
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ExperimentResult {
            id: json::get(obj, "id")?.as_string()?,
            title: json::get(obj, "title")?.as_string()?,
            x_label: json::get(obj, "x_label")?.as_string()?,
            y_label: json::get(obj, "y_label")?.as_string()?,
            series,
            notes,
        })
    }
}

/// Minimal JSON writer/parser covering exactly the document shape
/// [`ExperimentResult::to_json`] emits (objects, arrays, strings, finite
/// and non-finite `f64`s).
mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub(super) enum Value {
        /// String scalar.
        Str(String),
        /// Number scalar (non-finite values round-trip via string forms).
        Num(f64),
        /// Array of values.
        Arr(Vec<Value>),
        /// Object as ordered key/value pairs (no duplicate-key handling).
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub(super) fn as_object(&self) -> Result<&[(String, Value)], String> {
            match self {
                Value::Obj(fields) => Ok(fields),
                other => Err(format!("expected object, got {other:?}")),
            }
        }

        pub(super) fn as_array(&self) -> Result<&[Value], String> {
            match self {
                Value::Arr(items) => Ok(items),
                other => Err(format!("expected array, got {other:?}")),
            }
        }

        pub(super) fn as_string(&self) -> Result<String, String> {
            match self {
                Value::Str(s) => Ok(s.clone()),
                other => Err(format!("expected string, got {other:?}")),
            }
        }

        pub(super) fn as_numbers(&self) -> Result<Vec<f64>, String> {
            self.as_array()?
                .iter()
                .map(|v| match v {
                    Value::Num(n) => Ok(*n),
                    // `numbers` encodes non-finite values as strings.
                    Value::Str(s) => s
                        .parse::<f64>()
                        .map_err(|_| format!("expected number, got string `{s}`")),
                    other => Err(format!("expected number, got {other:?}")),
                })
                .collect()
        }
    }

    /// Fetch a required object field.
    pub(super) fn get<'v>(obj: &'v [(String, Value)], key: &str) -> Result<&'v Value, String> {
        obj.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field `{key}`"))
    }

    /// Encode a string with JSON escaping.
    pub(super) fn string(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }

    /// Encode an `f64` array. Non-finite values (possible for diverging
    /// estimators) are encoded as strings, which [`parse`] maps back.
    pub(super) fn numbers(xs: &[f64]) -> String {
        let mut out = String::from("[");
        for (i, x) in xs.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            if x.is_finite() {
                out.push_str(&format_number(*x));
            } else {
                out.push_str(&format!("\"{x}\""));
            }
        }
        out.push(']');
        out
    }

    /// Shortest round-trip decimal form, always with a decimal point or
    /// exponent so the value reads as a float.
    fn format_number(x: f64) -> String {
        let s = format!("{x}");
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    }

    /// Parse a JSON document (the subset emitted by this module).
    pub(super) fn parse(input: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn peek(&mut self) -> Result<u8, String> {
            self.skip_ws();
            self.bytes
                .get(self.pos)
                .copied()
                .ok_or_else(|| "unexpected end of input".to_string())
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            let got = self.peek()?;
            if got != b {
                return Err(format!(
                    "expected `{}` at byte {}, got `{}`",
                    b as char, self.pos, got as char
                ));
            }
            self.pos += 1;
            Ok(())
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek()? {
                b'{' => self.object(),
                b'[' => self.array(),
                b'"' => Ok(self.string_value()?),
                _ => self.number(),
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut fields = Vec::new();
            if self.peek()? == b'}' {
                self.pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                let key = match self.string_value()? {
                    Value::Str(s) => s,
                    _ => unreachable!("string_value returns Str"),
                };
                self.expect(b':')?;
                let val = self.value()?;
                fields.push((key, val));
                match self.peek()? {
                    b',' => self.pos += 1,
                    b'}' => {
                        self.pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    other => return Err(format!("expected `,` or `}}`, got `{}`", other as char)),
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            if self.peek()? == b']' {
                self.pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(self.value()?);
                match self.peek()? {
                    b',' => self.pos += 1,
                    b']' => {
                        self.pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    other => return Err(format!("expected `,` or `]`, got `{}`", other as char)),
                }
            }
        }

        fn string_value(&mut self) -> Result<Value, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                let b = *self
                    .bytes
                    .get(self.pos)
                    .ok_or_else(|| "unterminated string".to_string())?;
                self.pos += 1;
                match b {
                    b'"' => break,
                    b'\\' => {
                        let esc = *self
                            .bytes
                            .get(self.pos)
                            .ok_or_else(|| "unterminated escape".to_string())?;
                        self.pos += 1;
                        match esc {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'u' => {
                                let hex = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .ok_or_else(|| "truncated \\u escape".to_string())?;
                                let hex = std::str::from_utf8(hex)
                                    .map_err(|_| "non-utf8 \\u escape".to_string())?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                                self.pos += 4;
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| format!("invalid codepoint {code}"))?,
                                );
                            }
                            other => return Err(format!("bad escape `\\{}`", other as char)),
                        }
                    }
                    _ => {
                        // Re-decode multi-byte UTF-8 sequences from the raw
                        // byte stream.
                        let start = self.pos - 1;
                        let width = utf8_width(b);
                        let end = start + width;
                        let chunk = self
                            .bytes
                            .get(start..end)
                            .ok_or_else(|| "truncated utf-8 sequence".to_string())?;
                        let s = std::str::from_utf8(chunk)
                            .map_err(|_| "invalid utf-8 in string".to_string())?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
            Ok(Value::Str(out))
        }

        fn number(&mut self) -> Result<Value, String> {
            self.skip_ws();
            let start = self.pos;
            while matches!(
                self.bytes.get(self.pos),
                Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            ) {
                self.pos += 1;
            }
            let text =
                std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number bytes");
            text.parse::<f64>()
                .map(Value::Num)
                .map_err(|_| format!("bad number `{text}` at byte {start}"))
        }
    }

    fn utf8_width(first: u8) -> usize {
        match first {
            0x00..=0x7F => 1,
            0xC0..=0xDF => 2,
            0xE0..=0xEF => 3,
            _ => 4,
        }
    }
}

/// Format with 4 significant digits (plot-legible, diff-stable).
fn format_sig(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    if !v.is_finite() {
        return format!("{v}");
    }
    let magnitude = v.abs().log10().floor() as i32;
    let decimals = (3 - magnitude).clamp(0, 10) as usize;
    format!("{v:.decimals$}")
}

fn trim_float(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExperimentResult {
        ExperimentResult::new("figX", "Demo", "Query Cost", "Relative Error")
            .with_series(Series::new("SRW", vec![20.0, 40.0], vec![0.5, 0.25]))
            .with_series(Series::new("CNRW", vec![20.0, 40.0], vec![0.4, 0.125]))
            .with_note("synthetic demo data")
    }

    #[test]
    fn markdown_contains_everything() {
        let md = sample().to_markdown();
        assert!(md.contains("figX"));
        assert!(md.contains("| Query Cost | SRW | CNRW |"));
        assert!(md.contains("| 20 |"));
        assert!(md.contains("0.5000"));
        assert!(md.contains("> synthetic demo data"));
    }

    #[test]
    fn csv_roundtrip_shape() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "Query Cost,SRW,CNRW");
        assert!(lines[1].starts_with("20,"));
    }

    #[test]
    fn json_roundtrip() {
        let r = sample();
        let back = ExperimentResult::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn json_roundtrip_hostile_content() {
        let r = ExperimentResult::new("fig\"X\"", "Demo \\ Δ", "x\nlabel", "y\tlabel")
            .with_series(Series::new(
                "divérging",
                vec![0.0, 1.5, -2.0],
                vec![f64::INFINITY, f64::NEG_INFINITY, 1e-9],
            ))
            .with_note("note with \"quotes\" and unicode: π ≈ 3.14159");
        let back = ExperimentResult::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn json_rejects_malformed() {
        assert!(ExperimentResult::from_json("").is_err());
        assert!(ExperimentResult::from_json("{}").is_err());
        assert!(ExperimentResult::from_json("[1, 2").is_err());
        let good = sample().to_json();
        assert!(ExperimentResult::from_json(&good[..good.len() - 1]).is_err());
    }

    #[test]
    fn series_auc() {
        let s = Series::new("x", vec![0.0, 1.0, 2.0], vec![1.0, 1.0, 1.0]);
        assert!((s.auc() - 2.0).abs() < 1e-12);
        let s = Series::new("x", vec![0.0, 2.0], vec![0.0, 2.0]);
        assert!((s.auc() - 2.0).abs() < 1e-12);
        assert_eq!(Series::new("e", vec![1.0], vec![1.0]).auc(), 0.0);
    }

    #[test]
    fn series_stats() {
        let s = Series::new("x", vec![1.0, 2.0], vec![3.0, 5.0]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert!((s.mean_y() - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn series_validates_lengths() {
        let _ = Series::new("bad", vec![1.0], vec![]);
    }

    #[test]
    fn lookup_by_label() {
        let r = sample();
        assert!(r.series_by_label("SRW").is_some());
        assert!(r.series_by_label("nope").is_none());
    }

    #[test]
    fn format_sig_behaviour() {
        assert_eq!(format_sig(0.0), "0");
        assert_eq!(format_sig(0.5), "0.5000");
        assert_eq!(format_sig(12345.6), "12346");
        assert_eq!(format_sig(f64::INFINITY), "inf");
    }
}
