//! Experiment result containers and renderers (markdown / CSV / JSON).
//!
//! JSON encoding/decoding rides the workspace serialization layer
//! ([`osn_serde`]): the containers implement [`ToValue`] / [`FromValue`]
//! and render through the pretty writer, whose layout is byte-identical to
//! the hand-rolled writer that used to live in this module — existing
//! artifacts (`BENCH_walkers.json`, recorded `repro` baselines) parse and
//! re-emit unchanged.

use osn_serde::{FromValue, ToValue, Value};

/// One labeled curve: `(x, y)` pairs (a line in one of the paper's plots,
/// or a column group in a table).
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Legend label (e.g. `"CNRW"`).
    pub label: String,
    /// X coordinates (query cost, graph size, node rank, …).
    pub x: Vec<f64>,
    /// Y values (relative error, KL divergence, probability, …).
    pub y: Vec<f64>,
}

impl Series {
    /// Build a series, checking lengths agree.
    ///
    /// # Panics
    /// Panics if `x` and `y` lengths differ.
    pub fn new(label: impl Into<String>, x: Vec<f64>, y: Vec<f64>) -> Self {
        assert_eq!(x.len(), y.len(), "series coordinate length mismatch");
        Series {
            label: label.into(),
            x,
            y,
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Mean of the y values (NaN when empty).
    pub fn mean_y(&self) -> f64 {
        if self.y.is_empty() {
            return f64::NAN;
        }
        self.y.iter().sum::<f64>() / self.y.len() as f64
    }

    /// Area-under-curve by trapezoid rule — a single-number summary used to
    /// compare algorithms across a whole budget sweep ("lower error curve").
    pub fn auc(&self) -> f64 {
        if self.len() < 2 {
            return 0.0;
        }
        self.x
            .windows(2)
            .zip(self.y.windows(2))
            .map(|(xs, ys)| (xs[1] - xs[0]) * (ys[0] + ys[1]) / 2.0)
            .sum()
    }
}

/// A complete experiment artifact: identifier, axis names, all series.
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentResult {
    /// Identifier matching the paper ("fig6", "table1", …).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// All curves.
    pub series: Vec<Series>,
    /// Free-form notes: parameters, substitutions, caveats.
    pub notes: Vec<String>,
}

impl ExperimentResult {
    /// New result shell.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        ExperimentResult {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a series (builder style).
    #[must_use]
    pub fn with_series(mut self, s: Series) -> Self {
        self.series.push(s);
        self
    }

    /// Append a note (builder style).
    #[must_use]
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Find a series by label.
    pub fn series_by_label(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Render as a GitHub-flavored markdown table: one row per x value, one
    /// column per series (the form EXPERIMENTS.md embeds).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {} — {}\n\n", self.id, self.title));
        for note in &self.notes {
            out.push_str(&format!("> {note}\n"));
        }
        if !self.notes.is_empty() {
            out.push('\n');
        }
        if self.series.is_empty() {
            out.push_str("(no data)\n");
            return out;
        }
        // Header.
        out.push_str(&format!("| {} |", self.x_label));
        for s in &self.series {
            out.push_str(&format!(" {} |", s.label));
        }
        out.push('\n');
        out.push_str("|---|");
        for _ in &self.series {
            out.push_str("---|");
        }
        out.push('\n');
        // Rows, keyed by the union of x values in order of first series.
        let xs = &self.series[0].x;
        for (i, &x) in xs.iter().enumerate() {
            out.push_str(&format!("| {} |", trim_float(x)));
            for s in &self.series {
                match s.y.get(i) {
                    Some(&y) => out.push_str(&format!(" {} |", format_sig(y))),
                    None => out.push_str(" — |"),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Render as CSV: `x,label1,label2,...` header then one row per x.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.x_label.replace(',', ";"));
        for s in &self.series {
            out.push(',');
            out.push_str(&s.label.replace(',', ";"));
        }
        out.push('\n');
        if let Some(first) = self.series.first() {
            for (i, &x) in first.x.iter().enumerate() {
                out.push_str(&format!("{x}"));
                for s in &self.series {
                    out.push(',');
                    if let Some(&y) = s.y.get(i) {
                        out.push_str(&format!("{y}"));
                    }
                }
                out.push('\n');
            }
        }
        out
    }

    /// Serialize to pretty JSON (via [`osn_serde`]'s pretty writer, whose
    /// layout matches this module's historical hand-rolled format byte for
    /// byte).
    pub fn to_json(&self) -> String {
        self.to_value().to_pretty()
    }

    /// Parse the JSON produced by [`to_json`](Self::to_json).
    ///
    /// # Errors
    /// Returns a human-readable message when `input` is not a well-formed
    /// experiment-result document.
    pub fn from_json(input: &str) -> Result<Self, String> {
        let value = Value::parse(input).map_err(|e| e.to_string())?;
        Self::from_value(&value)
    }
}

impl ToValue for Series {
    fn to_value(&self) -> Value {
        Value::obj([
            ("label", self.label.to_value()),
            ("x", self.x.to_value()),
            ("y", self.y.to_value()),
        ])
    }
}

impl FromValue for Series {
    fn from_value(value: &Value) -> Result<Self, String> {
        let x: Vec<f64> = value.field("x")?.decode()?;
        let y: Vec<f64> = value.field("y")?.decode()?;
        if x.len() != y.len() {
            return Err("series coordinate length mismatch".into());
        }
        Ok(Series {
            label: value.field("label")?.decode()?,
            x,
            y,
        })
    }
}

impl ToValue for ExperimentResult {
    fn to_value(&self) -> Value {
        Value::obj([
            ("id", self.id.to_value()),
            ("title", self.title.to_value()),
            ("x_label", self.x_label.to_value()),
            ("y_label", self.y_label.to_value()),
            ("series", self.series.to_value()),
            ("notes", self.notes.to_value()),
        ])
    }
}

impl FromValue for ExperimentResult {
    fn from_value(value: &Value) -> Result<Self, String> {
        Ok(ExperimentResult {
            id: value.field("id")?.decode()?,
            title: value.field("title")?.decode()?,
            x_label: value.field("x_label")?.decode()?,
            y_label: value.field("y_label")?.decode()?,
            series: value.field("series")?.decode()?,
            notes: value.field("notes")?.decode()?,
        })
    }
}

/// Format with 4 significant digits (plot-legible, diff-stable).
fn format_sig(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    if !v.is_finite() {
        return format!("{v}");
    }
    let magnitude = v.abs().log10().floor() as i32;
    let decimals = (3 - magnitude).clamp(0, 10) as usize;
    format!("{v:.decimals$}")
}

fn trim_float(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExperimentResult {
        ExperimentResult::new("figX", "Demo", "Query Cost", "Relative Error")
            .with_series(Series::new("SRW", vec![20.0, 40.0], vec![0.5, 0.25]))
            .with_series(Series::new("CNRW", vec![20.0, 40.0], vec![0.4, 0.125]))
            .with_note("synthetic demo data")
    }

    #[test]
    fn markdown_contains_everything() {
        let md = sample().to_markdown();
        assert!(md.contains("figX"));
        assert!(md.contains("| Query Cost | SRW | CNRW |"));
        assert!(md.contains("| 20 |"));
        assert!(md.contains("0.5000"));
        assert!(md.contains("> synthetic demo data"));
    }

    #[test]
    fn csv_roundtrip_shape() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "Query Cost,SRW,CNRW");
        assert!(lines[1].starts_with("20,"));
    }

    #[test]
    fn json_roundtrip() {
        let r = sample();
        let back = ExperimentResult::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn json_roundtrip_hostile_content() {
        let r = ExperimentResult::new("fig\"X\"", "Demo \\ Δ", "x\nlabel", "y\tlabel")
            .with_series(Series::new(
                "divérging",
                vec![0.0, 1.5, -2.0],
                vec![f64::INFINITY, f64::NEG_INFINITY, 1e-9],
            ))
            .with_note("note with \"quotes\" and unicode: π ≈ 3.14159");
        let back = ExperimentResult::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn json_rejects_malformed() {
        assert!(ExperimentResult::from_json("").is_err());
        assert!(ExperimentResult::from_json("{}").is_err());
        assert!(ExperimentResult::from_json("[1, 2").is_err());
        let good = sample().to_json();
        assert!(ExperimentResult::from_json(&good[..good.len() - 1]).is_err());
    }

    #[test]
    fn series_auc() {
        let s = Series::new("x", vec![0.0, 1.0, 2.0], vec![1.0, 1.0, 1.0]);
        assert!((s.auc() - 2.0).abs() < 1e-12);
        let s = Series::new("x", vec![0.0, 2.0], vec![0.0, 2.0]);
        assert!((s.auc() - 2.0).abs() < 1e-12);
        assert_eq!(Series::new("e", vec![1.0], vec![1.0]).auc(), 0.0);
    }

    #[test]
    fn series_stats() {
        let s = Series::new("x", vec![1.0, 2.0], vec![3.0, 5.0]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert!((s.mean_y() - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn series_validates_lengths() {
        let _ = Series::new("bad", vec![1.0], vec![]);
    }

    #[test]
    fn lookup_by_label() {
        let r = sample();
        assert!(r.series_by_label("SRW").is_some());
        assert!(r.series_by_label("nope").is_none());
    }

    #[test]
    fn format_sig_behaviour() {
        assert_eq!(format_sig(0.0), "0");
        assert_eq!(format_sig(0.5), "0.5000");
        assert_eq!(format_sig(12345.6), "12346");
        assert_eq!(format_sig(f64::INFINITY), "inf");
    }
}
