//! Trial execution: deterministic seeding, budget-limited walks, and
//! thread-parallel replication.

use std::sync::Arc;

use osn_client::{BatchConfig, BudgetedClient, SimulatedBatchOsn, SimulatedOsn};
use osn_graph::attributes::AttributedGraph;
use osn_graph::compact::CompactCsr;
use osn_graph::NodeId;
use osn_walks::{
    CoalescingDispatcher, HistoryBackend, OrchestratorReport, RandomWalk, RestartPolicy,
    WalkConfig, WalkOrchestrator, WalkSession, WalkTrace,
};

use crate::algorithms::Algorithm;

/// Derive a per-trial seed from an experiment seed and trial index with
/// SplitMix64 mixing. Stable across platforms and thread schedules. Shares
/// one mixer with the multi-walker engine's per-walker RNG streams.
pub fn trial_seed(experiment_seed: u64, trial: u64) -> u64 {
    osn_walks::multiwalk::stream_seed(experiment_seed, trial)
}

/// The plan for one budget-limited walk trial over a shared snapshot.
///
/// [`TrialPlan::new`] is the canonical entry point: every knob — budget,
/// step cap, history backend, dispatch mode, restart policy — is a
/// `with_*` builder on the same surface. [`TrialPlan::budgeted`] and
/// [`TrialPlan::steps`] remain as documented shorthands that forward to
/// the builder; nothing is deprecated.
///
/// Both dispatch modes execute on the unified orchestrator core of
/// `osn-walks` (PR 5): the synchronous path through [`WalkSession`] (the
/// orchestrator's single-walker serial entry point) and the batched path
/// through the [`CoalescingDispatcher`] (its coalesced driver), both under
/// the `Never` restart policy — which is what keeps the two modes
/// bit-identical per seed. [`TrialPlan::with_restarts`] opts a plan into a
/// [`RestartPolicy`] instead (single-walker steal ablations); that path
/// runs on [`WalkOrchestrator`] and its derived per-walker RNG stream, so
/// it matches orchestrator runs rather than the policy-free session
/// stream. Multi-walker experiments with restart policies (e.g.
/// `fig6_steal`) use [`WalkOrchestrator`] directly.
#[derive(Clone)]
pub struct TrialPlan {
    /// The snapshot every trial runs against (shared, never copied).
    pub network: Arc<AttributedGraph>,
    /// Unique-query budget (`None` = unlimited).
    pub budget: Option<u64>,
    /// Hard step cap (protects unlimited-budget walks; also bounds the time
    /// a budget-limited walk spends revisiting cached nodes).
    pub max_steps: usize,
    /// History backend for the history-aware samplers (arena by default;
    /// the benches flip this to ablate legacy vs arena storage).
    pub backend: HistoryBackend,
    /// Dispatch mode: `None` drives the walk synchronously through a
    /// [`WalkSession`]; `Some(config)` routes every neighbor fetch through
    /// a [`SimulatedBatchOsn`] batch endpoint via the
    /// [`CoalescingDispatcher`]. Both modes consume the identical RNG
    /// stream, so traces are bit-identical — the cross-mode equivalence
    /// `tests/batch_client_props.rs` pins.
    pub batch: Option<BatchConfig>,
    /// Restart policy for single-walker steal ablations (`None` = the
    /// policy-free fast path). Set via [`Self::with_restarts`].
    pub restarts: Option<Arc<dyn RestartPolicy + Send + Sync>>,
    /// Precomputed group plan for GNRW trials (`None` = the scratch
    /// per-step partition). Set via [`Self::with_group_plan`]; non-GNRW
    /// algorithms ignore it.
    pub group_plan: Option<(Arc<osn_walks::GroupPlan>, osn_walks::PlanMode)>,
    /// Compressed snapshot backing every trial's client instead of
    /// [`Self::network`] (which becomes an edgeless placeholder carrying
    /// only the node count). Set via [`Self::from_compact`]; walks decode
    /// neighbor lists on demand and are bit-identical per seed to the same
    /// plan over the decompressed [`osn_graph::CsrGraph`].
    pub compact: Option<Arc<CompactCsr>>,
}

impl TrialPlan {
    /// The canonical constructor: an unbudgeted plan over a snapshot with
    /// the default step cap, history backend, synchronous dispatch, and no
    /// restart policy. Layer knobs on with the `with_*` builders.
    pub fn new(network: Arc<AttributedGraph>) -> Self {
        TrialPlan {
            network,
            budget: None,
            max_steps: 10_000,
            backend: HistoryBackend::default(),
            batch: None,
            restarts: None,
            group_plan: None,
            compact: None,
        }
    }

    /// A plan over a compressed snapshot: clients decode adjacency from
    /// `graph` on demand instead of borrowing a materialized CSR, so
    /// ~10⁸-edge graphs run in the packed footprint. [`Self::network`] is
    /// an edgeless placeholder (correct node count, no topology); group
    /// plans and attribute peeks need a plain-network plan.
    pub fn from_compact(graph: Arc<CompactCsr>) -> Self {
        let client = SimulatedOsn::from_compact(Arc::clone(&graph));
        let mut plan = Self::new(client.network_shared());
        plan.compact = Some(graph);
        plan
    }

    /// Shorthand for a budget-limited plan; forwards to
    /// [`new`](Self::new)`.`[`with_budget`](Self::with_budget)`.`[`with_max_steps`](Self::with_max_steps)
    /// with a step cap proportional to the budget.
    pub fn budgeted(network: Arc<AttributedGraph>, budget: u64) -> Self {
        // Once the budget is exhausted a walk can only revisit cached nodes;
        // the paper's samplers stop there. A generous multiple bounds the
        // tail where the walk bounces among cached nodes before touching a
        // new one.
        let max_steps = (budget as usize).saturating_mul(50).max(10_000);
        Self::new(network)
            .with_budget(budget)
            .with_max_steps(max_steps)
    }

    /// Shorthand for a step-count plan (Figure 8-style runs); forwards to
    /// [`new`](Self::new)`.`[`with_max_steps`](Self::with_max_steps).
    pub fn steps(network: Arc<AttributedGraph>, max_steps: usize) -> Self {
        Self::new(network).with_max_steps(max_steps)
    }

    /// Same plan under a unique-query budget.
    #[must_use]
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Same plan with an explicit hard step cap.
    #[must_use]
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Same plan on an explicit history backend.
    #[must_use]
    pub fn with_backend(mut self, backend: HistoryBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Same plan routed through a batch endpoint (the coalescing dispatch
    /// mode; see [`Self::batch`]).
    #[must_use]
    pub fn with_batch(mut self, config: BatchConfig) -> Self {
        self.batch = Some(config);
        self
    }

    /// Same plan under a [`RestartPolicy`] (single-walker steal ablations).
    ///
    /// Trials run on [`WalkOrchestrator`] — serial or coalesced per
    /// [`Self::batch`] — with the walker consuming the orchestrator's
    /// derived RNG stream. Use [`Self::run_report`] to see restart
    /// diagnostics; [`Self::run`] flattens to the walker's trace.
    #[must_use]
    pub fn with_restarts(mut self, policy: impl RestartPolicy + Send + 'static) -> Self {
        self.restarts = Some(Arc::new(policy));
        self
    }

    /// Same plan with GNRW trials running against a shared precomputed
    /// [`osn_walks::GroupPlan`] in the given [`osn_walks::PlanMode`]
    /// (`Exact` replays the scratch path's traces bit-for-bit; `Alias` is
    /// the fast path, equivalent in distribution). Build the plan once via
    /// [`Algorithm::build_group_plan`] over [`Self::network`] and share it
    /// across trials.
    #[must_use]
    pub fn with_group_plan(
        mut self,
        plan: Arc<osn_walks::GroupPlan>,
        mode: osn_walks::PlanMode,
    ) -> Self {
        self.group_plan = Some((plan, mode));
        self
    }

    /// Construct the walker for one trial, honoring [`Self::group_plan`].
    fn make_walker(
        &self,
        algorithm: &Algorithm,
        start: NodeId,
        backend: HistoryBackend,
    ) -> Box<dyn RandomWalk + Send> {
        match &self.group_plan {
            Some((plan, mode)) => algorithm.make_planned(start, Arc::clone(plan), *mode, backend),
            None => algorithm.make_with_backend(start, backend),
        }
    }

    /// One trial's client over the plan's snapshot: compact-backed when
    /// [`Self::compact`] is set, a zero-copy shared CSR otherwise.
    fn make_client(&self) -> SimulatedOsn {
        match &self.compact {
            Some(g) => SimulatedOsn::from_compact(Arc::clone(g)),
            None => SimulatedOsn::new_shared(self.network.clone()),
        }
    }

    /// Uniformly random start node for the given trial seed.
    pub fn start_node(&self, seed: u64) -> NodeId {
        let n = self.network.graph.node_count() as u64;
        NodeId((trial_seed(seed, 0xdead_beef) % n) as u32)
    }

    /// Run one trial of `algorithm` with the given seed, returning the trace.
    ///
    /// With [`Self::batch`] set, the walk is driven by the coalescing batch
    /// dispatcher instead of a synchronous session — over the **same** RNG
    /// stream, so the trace is bit-identical to the synchronous mode
    /// (budget cut-off included).
    pub fn run(&self, algorithm: &Algorithm, seed: u64) -> WalkTrace {
        let start = self.start_node(seed);
        if self.restarts.is_some() {
            let report = self.run_report(algorithm, seed);
            let nodes = report
                .trace
                .per_walker
                .into_iter()
                .next()
                .unwrap_or_default();
            return WalkTrace::from_parts(start, nodes, report.stops[0], report.trace.stats);
        }
        let mut walker = self.make_walker(algorithm, start, self.backend);
        if let Some(batch) = &self.batch {
            return self.run_batched(walker, start, batch.clone(), seed);
        }
        let config = WalkConfig::steps(self.max_steps).with_seed(seed);
        let session = WalkSession::new(config);
        match self.budget {
            Some(b) => {
                let inner = self.make_client();
                let n = self.network.graph.node_count();
                let mut client = BudgetedClient::new(inner, b, n);
                session.run(walker.as_mut(), &mut client)
            }
            None => {
                let mut client = self.make_client();
                session.run(walker.as_mut(), &mut client)
            }
        }
    }

    /// The batched leg of [`Self::run`]: one walker through the
    /// [`CoalescingDispatcher`] against a [`SimulatedBatchOsn`], seeded
    /// exactly like the synchronous [`WalkSession`].
    fn run_batched(
        &self,
        walker: Box<dyn RandomWalk + Send>,
        start: NodeId,
        batch: BatchConfig,
        seed: u64,
    ) -> WalkTrace {
        use rand::SeedableRng;
        let mut client = SimulatedBatchOsn::configured(self.make_client(), batch, self.budget);
        let mut walkers = vec![walker];
        let mut rngs = vec![rand_chacha::ChaCha12Rng::seed_from_u64(seed)];
        let report = CoalescingDispatcher::new(self.max_steps).run(
            &mut client,
            &mut walkers,
            &mut rngs,
            |_| 1.0,
        );
        let nodes = report
            .trace
            .per_walker
            .into_iter()
            .next()
            .unwrap_or_default();
        WalkTrace::from_parts(start, nodes, report.stops[0], report.trace.stats)
    }

    /// Run one trial on the [`WalkOrchestrator`] engine and return the full
    /// [`OrchestratorReport`] — restart diagnostics included. This is the
    /// path [`Self::run`] takes when [`Self::with_restarts`] set a policy
    /// (without one, the report is a policy-free `Never` run); the walker
    /// consumes the orchestrator's derived RNG stream for `seed`.
    pub fn run_report(&self, algorithm: &Algorithm, seed: u64) -> OrchestratorReport {
        let start = self.start_node(seed);
        let policy: &(dyn RestartPolicy + Send + Sync) = match &self.restarts {
            Some(p) => p.as_ref(),
            None => &osn_walks::Never,
        };
        let orchestrator =
            WalkOrchestrator::new(1, self.max_steps, seed).with_backend(self.backend);
        let make = |_i: usize, backend: HistoryBackend| self.make_walker(algorithm, start, backend);
        match &self.batch {
            Some(batch) => {
                let mut client =
                    SimulatedBatchOsn::configured(self.make_client(), batch.clone(), self.budget);
                orchestrator.run_coalesced(&mut client, make, |_| 1.0, policy)
            }
            None => match self.budget {
                Some(b) => {
                    let inner = self.make_client();
                    let n = self.network.graph.node_count();
                    let mut client = BudgetedClient::new(inner, b, n);
                    orchestrator.run_serial(&mut client, make, |_| 1.0, policy)
                }
                None => {
                    let mut client = self.make_client();
                    orchestrator.run_serial(&mut client, make, |_| 1.0, policy)
                }
            },
        }
    }
}

/// Map `f` over `0..count` using up to `threads` scoped OS threads,
/// preserving output order. Results are deterministic because every trial
/// derives its own seed — thread scheduling cannot reorder randomness.
pub fn parallel_map<T, F>(count: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, count.max(1));
    if threads <= 1 || count <= 1 {
        return (0..count).map(f).collect();
    }
    let mut results: Vec<Option<T>> = (0..count).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let f = &f;
    std::thread::scope(|scope| {
        // Workers pull indices from a shared counter and return
        // (index, value) pairs; the scatter happens after the join.
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                scope.spawn(move || {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            for (i, v) in h.join().expect("worker panicked") {
                results[i] = Some(v);
            }
        }
    });
    results
        .into_iter()
        .map(|o| o.expect("all indices computed"))
        .collect()
}

/// Default worker count: physical parallelism minus one, at least one.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1).max(1))
        .unwrap_or(1)
}

/// A soft wall-clock guard for long sweep schedules (the `repro --full`
/// runs): construct with a limit, poll [`exceeded`](Self::exceeded) between
/// units of work, and stop scheduling new ones once it fires. The guard
/// never interrupts a unit mid-flight — `Scale::Full` sweeps stay
/// internally consistent; only *remaining* targets are skipped.
#[derive(Clone, Copy, Debug)]
pub struct Deadline {
    started: std::time::Instant,
    limit: Option<std::time::Duration>,
}

impl Deadline {
    /// A guard that never fires.
    pub fn unlimited() -> Self {
        Deadline {
            started: std::time::Instant::now(),
            limit: None,
        }
    }

    /// A guard firing `secs` seconds from now.
    pub fn after_secs(secs: u64) -> Self {
        Deadline {
            started: std::time::Instant::now(),
            limit: Some(std::time::Duration::from_secs(secs)),
        }
    }

    /// Whether the limit has passed.
    pub fn exceeded(&self) -> bool {
        self.limit.is_some_and(|l| self.started.elapsed() > l)
    }

    /// Time since the guard was armed.
    pub fn elapsed(&self) -> std::time::Duration {
        self.started.elapsed()
    }

    /// The configured limit, if any.
    pub fn limit(&self) -> Option<std::time::Duration> {
        self.limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_datasets::{facebook_like, Scale};
    use osn_walks::WalkStop;

    fn shared_net() -> Arc<AttributedGraph> {
        Arc::new(facebook_like(Scale::Test, 1).network)
    }

    #[test]
    fn trial_seeds_are_spread() {
        let a = trial_seed(1, 0);
        let b = trial_seed(1, 1);
        let c = trial_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(trial_seed(1, 0), a);
    }

    #[test]
    fn budgeted_trial_stops_on_budget() {
        let plan = TrialPlan::budgeted(shared_net(), 30);
        let trace = plan.run(&Algorithm::Srw, 5);
        assert_eq!(trace.stop, WalkStop::BudgetExhausted);
        assert!(trace.stats.unique <= 30);
        assert!(!trace.is_empty());
    }

    #[test]
    fn unbudgeted_trial_runs_exact_steps() {
        let plan = TrialPlan::steps(shared_net(), 500);
        let trace = plan.run(&Algorithm::Cnrw, 6);
        assert_eq!(trace.len(), 500);
        assert_eq!(trace.stop, WalkStop::MaxSteps);
    }

    #[test]
    fn batched_trial_is_bit_identical_to_serial() {
        // Same plan, same seed, serial session vs coalescing batch
        // dispatcher: identical trace, identical accounting, identical
        // budget cut-off — for several batch shapes.
        let plan = TrialPlan::budgeted(shared_net(), 40);
        for algorithm in [Algorithm::Cnrw, Algorithm::Srw] {
            let serial = plan.run(&algorithm, 11);
            for batch_size in [1usize, 4, 16] {
                let batched = plan
                    .clone()
                    .with_batch(osn_client::BatchConfig::new(batch_size).with_in_flight(2))
                    .run(&algorithm, 11);
                assert_eq!(serial.nodes(), batched.nodes(), "batch_size={batch_size}");
                assert_eq!(serial.stop, batched.stop);
                assert_eq!(serial.stats, batched.stats);
            }
        }
    }

    #[test]
    fn builder_surface_matches_the_shorthands() {
        // The documented shorthands forward to the canonical builder: a
        // hand-assembled plan replays the shorthand's traces bit-for-bit.
        let net = shared_net();
        let short = TrialPlan::budgeted(net.clone(), 30);
        let built = TrialPlan::new(net.clone())
            .with_budget(30)
            .with_max_steps(short.max_steps);
        assert_eq!(
            short.run(&Algorithm::Cnrw, 4).nodes(),
            built.run(&Algorithm::Cnrw, 4).nodes()
        );
        let short = TrialPlan::steps(net.clone(), 120);
        let built = TrialPlan::new(net).with_max_steps(120);
        assert_eq!(
            short.run(&Algorithm::Srw, 4).nodes(),
            built.run(&Algorithm::Srw, 4).nodes()
        );
    }

    /// A deliberately simple policy for exercising the hook: teleport home
    /// on a fixed step cadence.
    struct TeleportEvery {
        cadence: usize,
        home: NodeId,
    }

    impl osn_walks::RestartPolicy for TeleportEvery {
        fn restart_target(
            &self,
            _walker: usize,
            steps_done: usize,
            current: NodeId,
            _current_degree: usize,
            _cached: &dyn Fn(NodeId) -> bool,
        ) -> Option<(NodeId, osn_walks::RestartReason)> {
            (steps_done.is_multiple_of(self.cadence) && current != self.home)
                .then_some((self.home, osn_walks::RestartReason::Exhausted))
        }
    }

    #[test]
    fn restart_hook_relocates_and_reports() {
        let plan = TrialPlan::steps(shared_net(), 200).with_restarts(TeleportEvery {
            cadence: 25,
            home: NodeId(0),
        });
        let report = plan.run_report(&Algorithm::Srw, 13);
        assert!(!report.restarts.is_empty(), "the policy never fired");
        for e in &report.restarts {
            assert_eq!(e.to, NodeId(0));
        }
        // `run` flattens the same orchestrated trace.
        let trace = plan.run(&Algorithm::Srw, 13);
        assert_eq!(trace.nodes(), &report.trace.per_walker[0][..]);
        // And the hook stays deterministic per seed.
        let again = plan.run_report(&Algorithm::Srw, 13);
        assert_eq!(report.restarts, again.restarts);
        assert_eq!(report.trace.per_walker, again.trace.per_walker);
    }

    #[test]
    fn restart_hook_supports_work_stealing() {
        // Single-walker WorkStealing: its own-territory filter means it
        // rarely (often never) fires, but the hook must run it cleanly in
        // both dispatch modes and stay deterministic.
        use osn_walks::{SharedFrontier, WorkStealing};
        let serial = TrialPlan::budgeted(shared_net(), 40).with_restarts(WorkStealing::new(
            1.05,
            8,
            SharedFrontier::new(),
        ));
        let a = serial.run(&Algorithm::Cnrw, 9);
        let b = serial.run(&Algorithm::Cnrw, 9);
        assert_eq!(a.nodes(), b.nodes());
        let batched = serial
            .clone()
            .with_batch(osn_client::BatchConfig::new(4).with_in_flight(2));
        let c = batched.run(&Algorithm::Cnrw, 9);
        assert!(!c.is_empty());
    }

    #[test]
    fn plan_backed_trial_matches_scratch_in_exact_mode() {
        use crate::algorithms::GroupingSpec;
        use osn_walks::PlanMode;
        let net = shared_net();
        let alg = Algorithm::Gnrw(GroupingSpec::ByDegree);
        let plan = Arc::new(alg.build_group_plan(&net).unwrap());
        assert!(
            plan.degenerate().is_none(),
            "fixture grouping must be non-degenerate for this comparison"
        );
        let scratch = TrialPlan::steps(net.clone(), 400).run(&alg, 17);
        let exact = TrialPlan::steps(net.clone(), 400)
            .with_group_plan(Arc::clone(&plan), PlanMode::Exact)
            .run(&alg, 17);
        assert_eq!(scratch.nodes(), exact.nodes());
        // Alias mode reorders draws; the trial still runs to the step cap
        // and stays deterministic per seed.
        let alias_plan = TrialPlan::steps(net, 400).with_group_plan(plan, PlanMode::Alias);
        let a = alias_plan.run(&alg, 17);
        let b = alias_plan.run(&alg, 17);
        assert_eq!(a.len(), 400);
        assert_eq!(a.nodes(), b.nodes());
    }

    #[test]
    fn group_plan_is_ignored_by_planless_samplers() {
        use crate::algorithms::GroupingSpec;
        use osn_walks::PlanMode;
        let net = shared_net();
        let plan = Arc::new(
            Algorithm::Gnrw(GroupingSpec::ByDegree)
                .build_group_plan(&net)
                .unwrap(),
        );
        let bare = TrialPlan::steps(net.clone(), 200).run(&Algorithm::Cnrw, 8);
        let planned = TrialPlan::steps(net, 200)
            .with_group_plan(plan, PlanMode::Alias)
            .run(&Algorithm::Cnrw, 8);
        assert_eq!(bare.nodes(), planned.nodes());
    }

    #[test]
    fn compact_backed_trials_are_bit_identical_to_plain() {
        use osn_graph::compact::CompactCsr;
        let net = shared_net();
        let compact = Arc::new(CompactCsr::from_csr(&net.graph));
        for algorithm in [Algorithm::Srw, Algorithm::Cnrw, Algorithm::NbCnrw] {
            let plain = TrialPlan::steps(net.clone(), 300).run(&algorithm, 21);
            let packed = TrialPlan::from_compact(Arc::clone(&compact))
                .with_max_steps(300)
                .run(&algorithm, 21);
            assert_eq!(plain.nodes(), packed.nodes(), "{algorithm:?}");
            assert_eq!(plain.stop, packed.stop);
            assert_eq!(plain.stats, packed.stats);
        }
        // The budgeted + batched legs route through the same client.
        let plain = TrialPlan::budgeted(net.clone(), 40)
            .with_batch(osn_client::BatchConfig::new(4).with_in_flight(2))
            .run(&Algorithm::Cnrw, 23);
        let mut packed_plan = TrialPlan::from_compact(compact)
            .with_budget(40)
            .with_batch(osn_client::BatchConfig::new(4).with_in_flight(2));
        packed_plan.max_steps = TrialPlan::budgeted(net, 40).max_steps;
        let packed = packed_plan.run(&Algorithm::Cnrw, 23);
        assert_eq!(plain.nodes(), packed.nodes());
        assert_eq!(plain.stats, packed.stats);
    }

    #[test]
    fn trials_deterministic_per_seed() {
        let plan = TrialPlan::budgeted(shared_net(), 50);
        let a = plan.run(&Algorithm::Cnrw, 7);
        let b = plan.run(&Algorithm::Cnrw, 7);
        assert_eq!(a.nodes(), b.nodes());
    }

    #[test]
    fn different_trials_start_differently_often() {
        let plan = TrialPlan::budgeted(shared_net(), 10);
        let starts: std::collections::HashSet<u32> = (0..20)
            .map(|t| plan.start_node(trial_seed(3, t)).0)
            .collect();
        assert!(starts.len() > 5, "starts not spread: {starts:?}");
    }

    #[test]
    fn deadline_guard_fires_only_past_its_limit() {
        let never = Deadline::unlimited();
        assert!(!never.exceeded());
        assert_eq!(never.limit(), None);
        let generous = Deadline::after_secs(3600);
        assert!(!generous.exceeded());
        let immediate = Deadline::after_secs(0);
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(immediate.exceeded());
        assert!(immediate.elapsed() >= std::time::Duration::from_millis(5));
    }

    #[test]
    fn parallel_map_preserves_order_and_values() {
        let out = parallel_map(100, 4, |i| i * i);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn parallel_map_single_thread_path() {
        assert_eq!(parallel_map(3, 1, |i| i + 1), vec![1, 2, 3]);
        assert_eq!(parallel_map(0, 4, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn parallel_equals_serial() {
        let plan = TrialPlan::budgeted(shared_net(), 20);
        let serial: Vec<u64> = (0..8)
            .map(|t| plan.run(&Algorithm::Srw, trial_seed(9, t)).stats.unique)
            .collect();
        let plan2 = plan.clone();
        let parallel: Vec<u64> = parallel_map(8, 4, move |t| {
            plan2
                .run(&Algorithm::Srw, trial_seed(9, t as u64))
                .stats
                .unique
        });
        assert_eq!(serial, parallel);
    }
}
