//! Shared sweep machinery: most figures are "metric vs unique-query budget,
//! one curve per algorithm" — this module implements that once.

use std::sync::Arc;

use osn_estimate::estimators::{RatioEstimator, UniformMeanEstimator};
use osn_estimate::metrics::{l2_distance, relative_error, symmetric_kl, EmpiricalDistribution};
use osn_graph::attributes::AttributedGraph;
use osn_graph::NodeId;

use crate::algorithms::Algorithm;
use crate::output::Series;
use crate::runner::{parallel_map, trial_seed, TrialPlan};

/// Replication parameters shared by the budget-sweep experiments.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Unique-query budgets to sweep (the x axis).
    pub budgets: Vec<u64>,
    /// Independent trials per (algorithm, budget) point.
    pub trials: usize,
    /// Experiment seed (trial seeds derive from it).
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
}

impl SweepConfig {
    /// Budgets 20..=140 step 20 (paper Figure 7/10 x-range).
    pub fn small_graph(trials: usize, seed: u64) -> Self {
        SweepConfig {
            budgets: (1..=7).map(|i| i * 20).collect(),
            trials,
            seed,
            threads: crate::runner::default_threads(),
        }
    }

    /// Budgets 100..=1000 step 100 (paper Figure 6 x-range).
    pub fn large_graph(trials: usize, seed: u64) -> Self {
        SweepConfig {
            budgets: (1..=10).map(|i| i * 100).collect(),
            trials,
            seed,
            threads: crate::runner::default_threads(),
        }
    }
}

/// What the samples are used to estimate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AggregateTarget {
    /// The average degree over all nodes (Figures 6, 7, 9a, 10, 11).
    AverageDegree,
    /// The population mean of a node attribute (Figure 9b).
    AttributeMean(String),
}

impl AggregateTarget {
    /// Ground truth over the whole network.
    pub fn truth(&self, network: &AttributedGraph) -> f64 {
        match self {
            AggregateTarget::AverageDegree => network.graph.average_degree(),
            AggregateTarget::AttributeMean(name) => network
                .attributes
                .population_mean(name)
                .expect("attribute exists"),
        }
    }

    /// Value of one node.
    pub fn value(&self, network: &AttributedGraph, v: NodeId) -> f64 {
        match self {
            AggregateTarget::AverageDegree => network.graph.degree(v) as f64,
            AggregateTarget::AttributeMean(name) => network
                .attributes
                .value_f64(name, v)
                .expect("attribute exists"),
        }
    }
}

/// Estimate the target from one trace and return the relative error.
fn trial_error(
    plan: &TrialPlan,
    algorithm: &Algorithm,
    target: &AggregateTarget,
    truth: f64,
    seed: u64,
) -> f64 {
    let trace = plan.run(algorithm, seed);
    let network = &plan.network;
    let estimate = if algorithm.uniform_stationary() {
        let mut est = UniformMeanEstimator::new();
        for &v in trace.nodes() {
            est.push(target.value(network, v));
        }
        est.mean()
    } else {
        let mut est = RatioEstimator::new();
        for &v in trace.nodes() {
            est.push(target.value(network, v), network.graph.degree(v));
        }
        est.mean()
    };
    match estimate {
        Some(e) => relative_error(e, truth),
        None => 1.0, // empty trace: max error
    }
}

/// "Relative error vs budget" curves, one per algorithm — the Figure 6/7c/9
/// shape. The y value at each budget is the mean relative error over
/// `trials` independent walks.
pub fn error_vs_budget(
    network: Arc<AttributedGraph>,
    algorithms: &[Algorithm],
    target: &AggregateTarget,
    config: &SweepConfig,
) -> Vec<Series> {
    let truth = target.truth(&network);
    algorithms
        .iter()
        .map(|alg| {
            let ys: Vec<f64> = config
                .budgets
                .iter()
                .map(|&budget| {
                    let plan = TrialPlan::budgeted(network.clone(), budget);
                    let errors = parallel_map(config.trials, config.threads, |t| {
                        trial_error(
                            &plan,
                            alg,
                            target,
                            truth,
                            trial_seed(config.seed ^ budget, t as u64),
                        )
                    });
                    errors.iter().sum::<f64>() / errors.len() as f64
                })
                .collect();
            Series::new(
                alg.label(),
                config.budgets.iter().map(|&b| b as f64).collect(),
                ys,
            )
        })
        .collect()
}

/// The three distribution-bias metrics of Figures 7a–c/10/11 computed in one
/// pass: symmetric KL divergence, ℓ2 distance (both between the pooled
/// empirical sampling distribution and the theoretical `k_v / 2|E|`), and
/// mean relative error of the average-degree estimate.
pub struct BiasMetrics {
    /// Symmetric KL divergence per budget.
    pub kl: Vec<f64>,
    /// ℓ2 distance per budget.
    pub l2: Vec<f64>,
    /// Mean relative error per budget.
    pub error: Vec<f64>,
}

/// Run the bias sweep for one algorithm.
pub fn bias_vs_budget(
    network: Arc<AttributedGraph>,
    algorithm: &Algorithm,
    config: &SweepConfig,
) -> BiasMetrics {
    let n = network.graph.node_count();
    let target_dist = network.graph.degree_stationary_distribution();
    let target = AggregateTarget::AverageDegree;
    let truth = target.truth(&network);

    let mut kl = Vec::with_capacity(config.budgets.len());
    let mut l2 = Vec::with_capacity(config.budgets.len());
    let mut error = Vec::with_capacity(config.budgets.len());

    for &budget in &config.budgets {
        let plan = TrialPlan::budgeted(network.clone(), budget);
        let per_trial = parallel_map(config.trials, config.threads, |t| {
            let seed = trial_seed(config.seed ^ budget, t as u64);
            let trace = plan.run(algorithm, seed);
            let mut dist = EmpiricalDistribution::new(n);
            dist.record_all(trace.nodes());
            let mut est = RatioEstimator::new();
            for &v in trace.nodes() {
                est.push(
                    plan.network.graph.degree(v) as f64,
                    plan.network.graph.degree(v),
                );
            }
            let err = est.mean().map(|e| relative_error(e, truth)).unwrap_or(1.0);
            (dist, err)
        });
        let mut pooled = EmpiricalDistribution::new(n);
        let mut err_sum = 0.0;
        for (dist, err) in &per_trial {
            pooled.merge(dist);
            err_sum += err;
        }
        let empirical_smoothed = pooled.probabilities_smoothed(0.5);
        let empirical_raw = pooled.probabilities();
        kl.push(symmetric_kl(&target_dist, &empirical_smoothed));
        l2.push(l2_distance(&target_dist, &empirical_raw));
        error.push(err_sum / per_trial.len() as f64);
    }
    BiasMetrics { kl, l2, error }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_datasets::{facebook_like, Scale};

    fn net() -> Arc<AttributedGraph> {
        Arc::new(facebook_like(Scale::Test, 1).network)
    }

    fn quick_config() -> SweepConfig {
        SweepConfig {
            budgets: vec![20, 60],
            trials: 8,
            seed: 42,
            threads: 2,
        }
    }

    #[test]
    fn error_sweep_shapes() {
        let series = error_vs_budget(
            net(),
            &[Algorithm::Srw, Algorithm::Cnrw],
            &AggregateTarget::AverageDegree,
            &quick_config(),
        );
        assert_eq!(series.len(), 2);
        for s in &series {
            assert_eq!(s.len(), 2);
            assert!(s.y.iter().all(|&e| (0.0..=2.0).contains(&e)), "{:?}", s.y);
        }
    }

    #[test]
    fn error_decreases_with_budget_on_average() {
        let mut config = quick_config();
        config.budgets = vec![10, 150];
        config.trials = 24;
        let series = error_vs_budget(
            net(),
            &[Algorithm::Srw],
            &AggregateTarget::AverageDegree,
            &config,
        );
        let y = &series[0].y;
        assert!(y[1] < y[0], "error should shrink with budget: {y:?}");
    }

    #[test]
    fn bias_sweep_metrics_finite_and_positive() {
        // Wide budget spread: at tiny budgets tight-community graphs can
        // show non-monotone pooled KL (see fig10 notes), but 20 -> 150 on a
        // 200-node graph must shrink.
        let mut config = quick_config();
        config.budgets = vec![20, 150];
        let m = bias_vs_budget(net(), &Algorithm::Cnrw, &config);
        assert_eq!(m.kl.len(), 2);
        for v in m.kl.iter().chain(&m.l2).chain(&m.error) {
            assert!(v.is_finite() && *v >= 0.0, "metric {v}");
        }
        // More budget -> pooled distribution closer to target.
        assert!(m.kl[1] < m.kl[0], "KL should shrink: {:?}", m.kl);
    }

    #[test]
    fn attribute_target_reads_attributes() {
        let network = net();
        let t = AggregateTarget::AttributeMean("age".to_string());
        let truth = t.truth(&network);
        assert!(truth > 0.0);
        let v = t.value(&network, NodeId(0));
        assert!(v >= 0.0);
    }

    #[test]
    fn sweep_config_presets() {
        let s = SweepConfig::small_graph(10, 1);
        assert_eq!(s.budgets, vec![20, 40, 60, 80, 100, 120, 140]);
        let l = SweepConfig::large_graph(10, 1);
        assert_eq!(l.budgets.len(), 10);
        assert_eq!(*l.budgets.last().unwrap(), 1000);
    }
}
