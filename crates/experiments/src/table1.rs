//! Table 1 — summary of the datasets in the experiments.

use osn_datasets::{table1_datasets, Scale};

use crate::output::{ExperimentResult, Series};

/// Regenerate Table 1 for our dataset stand-ins.
///
/// Columns mirror the paper's: nodes, edges, average degree, average
/// clustering coefficient, number of triangles. The synthetic barbell and
/// clustered graphs match the paper's rows exactly; the four OSN stand-ins
/// match in shape at the configured scale (see DESIGN.md substitutions).
pub fn run(scale: Scale, seed: u64) -> ExperimentResult {
    let datasets = table1_datasets(scale, seed);
    let mut result = ExperimentResult::new(
        "table1",
        "Summary of the datasets in the experiments",
        "dataset (index)",
        "value",
    )
    .with_note(format!("scale profile: {scale:?}"))
    .with_note(
        "facebook/gplus/yelp/youtube are calibrated synthetic stand-ins; \
         clustered/barbell match the paper exactly",
    );

    let idx: Vec<f64> = (0..datasets.len()).map(|i| i as f64).collect();
    let mut nodes = Vec::new();
    let mut edges = Vec::new();
    let mut avg_deg = Vec::new();
    let mut cc = Vec::new();
    let mut triangles = Vec::new();
    for d in &datasets {
        let s = d.summary();
        nodes.push(s.nodes as f64);
        edges.push(s.edges as f64);
        avg_deg.push(s.average_degree);
        cc.push(s.average_clustering_coefficient);
        triangles.push(s.triangles as f64);
        result
            .notes
            .push(format!("index {} = {}", result.notes.len() - 2, d.name));
    }
    result
        .with_series(Series::new("nodes", idx.clone(), nodes))
        .with_series(Series::new("edges", idx.clone(), edges))
        .with_series(Series::new("average degree", idx.clone(), avg_deg))
        .with_series(Series::new("avg clustering coefficient", idx.clone(), cc))
        .with_series(Series::new("triangles", idx, triangles))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_six_rows_and_five_columns() {
        let r = run(Scale::Test, 1);
        assert_eq!(r.series.len(), 5);
        for s in &r.series {
            assert_eq!(s.len(), 6);
        }
        // Exact rows for the synthetic graphs (indices 4 and 5).
        let nodes = r.series_by_label("nodes").unwrap();
        assert_eq!(nodes.y[4], 90.0);
        assert_eq!(nodes.y[5], 100.0);
        let tri = r.series_by_label("triangles").unwrap();
        assert_eq!(tri.y[4], 23_780.0);
        assert_eq!(tri.y[5], 39_200.0);
    }

    #[test]
    fn markdown_renders() {
        let r = run(Scale::Test, 1);
        let md = r.to_markdown();
        assert!(md.contains("table1"));
        assert!(md.contains("triangles"));
    }
}
