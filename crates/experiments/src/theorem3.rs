//! Theorem 3 — barbell escape analysis.
//!
//! The theorem bounds the *conditional transition probability* of crossing
//! the bridge under CNRW (with circulation history distributed as in steady
//! operation) at `(|G1|/(|G1|-1)) · ln|G1|` times SRW's `1/|G1|`. The
//! long-run crossing *rate* is identical for both walks (they share the
//! stationary distribution), so the measurable consequences are transient:
//!
//! * the **mean first-escape time** from a cold start inside one bell, and
//! * the **escape probability within a fixed step budget**.
//!
//! This module measures both, plus the theorem's analytical bound for
//! reference.

use std::sync::Arc;

use osn_datasets::barbell_graph_sized;
use osn_graph::NodeId;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

use crate::algorithms::Algorithm;
use crate::output::{ExperimentResult, Series};
use crate::runner::{parallel_map, trial_seed};

/// Configuration for the Theorem 3 validation.
#[derive(Clone, Debug)]
pub struct Theorem3Config {
    /// Bell sizes `|G1| = |G2|` to sweep.
    pub bell_sizes: Vec<usize>,
    /// Trials per (algorithm, size).
    pub trials: usize,
    /// Step cap per trial (escape virtually always happens well before).
    pub step_cap: usize,
    /// Experiment seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
}

impl Default for Theorem3Config {
    fn default() -> Self {
        Theorem3Config {
            bell_sizes: vec![10, 15, 20, 25, 30],
            trials: 800,
            step_cap: 200_000,
            seed: 0x73,
            threads: crate::runner::default_threads(),
        }
    }
}

impl Theorem3Config {
    /// Reduced profile for CI and quick runs.
    pub fn quick() -> Self {
        Theorem3Config {
            bell_sizes: vec![8, 12],
            trials: 200,
            step_cap: 50_000,
            seed: 0x73,
            threads: crate::runner::default_threads(),
        }
    }
}

/// Mean first-escape time (steps until the walk first reaches the right
/// bell, starting from node 0 in the left bell).
fn mean_escape_time(
    network: &Arc<osn_graph::attributes::AttributedGraph>,
    algorithm: &Algorithm,
    bell: usize,
    config: &Theorem3Config,
) -> f64 {
    let total: usize = parallel_map(config.trials, config.threads, |t| {
        let mut client = osn_client::SimulatedOsn::new_shared(network.clone());
        let mut rng = ChaCha12Rng::seed_from_u64(trial_seed(config.seed ^ bell as u64, t as u64));
        let mut walker = algorithm.make(NodeId(0));
        for s in 1..=config.step_cap {
            let v = walker
                .step(&mut client, &mut rng)
                .expect("unbudgeted client never fails");
            if v.index() >= bell {
                return s;
            }
        }
        config.step_cap
    })
    .iter()
    .sum();
    total as f64 / config.trials as f64
}

/// Run the sweep: mean escape times for SRW and CNRW per bell size, the
/// resulting speedup ratio, and the theorem's bound on the conditional
/// transition-probability ratio for context.
pub fn run(config: &Theorem3Config) -> ExperimentResult {
    let xs: Vec<f64> = config.bell_sizes.iter().map(|&b| b as f64).collect();
    let mut srw_y = Vec::with_capacity(config.bell_sizes.len());
    let mut cnrw_y = Vec::with_capacity(config.bell_sizes.len());
    let mut ratio_y = Vec::with_capacity(config.bell_sizes.len());
    let mut bound_y = Vec::with_capacity(config.bell_sizes.len());

    for &bell in &config.bell_sizes {
        let dataset = barbell_graph_sized(bell, bell);
        let network = Arc::new(dataset.network);
        let srw_t = mean_escape_time(&network, &Algorithm::Srw, bell, config);
        let cnrw_t = mean_escape_time(&network, &Algorithm::Cnrw, bell, config);
        srw_y.push(srw_t);
        cnrw_y.push(cnrw_t);
        ratio_y.push(srw_t / cnrw_t);
        bound_y.push(theorem3_bound(bell));
    }

    ExperimentResult::new(
        "theorem3",
        "Barbell escape: mean first-escape time and speedup",
        "Bell size |G1|",
        "steps / ratio",
    )
    .with_note(format!("{} trials per point", config.trials))
    .with_note(
        "the analytical bound concerns the conditional bridge-transition \
         probability with warmed circulation history; cold-start hitting \
         times improve by a smaller factor (see EXPERIMENTS.md discussion)",
    )
    .with_series(Series::new("SRW mean escape steps", xs.clone(), srw_y))
    .with_series(Series::new("CNRW mean escape steps", xs.clone(), cnrw_y))
    .with_series(Series::new("speedup (SRW/CNRW)", xs.clone(), ratio_y))
    .with_series(Series::new("Thm 3 bound on P_CNRW/P_SRW", xs, bound_y))
}

/// The Theorem 3 lower bound `(|G1|/(|G1|-1)) ln |G1|` on
/// `P_CNRW / P_SRW` at the bridge node.
pub fn theorem3_bound(bell: usize) -> f64 {
    let g1 = bell as f64;
    g1 / (g1 - 1.0) * g1.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_values() {
        assert!((theorem3_bound(10) - 10.0 / 9.0 * 10f64.ln()).abs() < 1e-12);
        assert!(theorem3_bound(50) > theorem3_bound(10));
    }

    #[test]
    fn cnrw_escapes_faster() {
        let r = run(&Theorem3Config::quick());
        let speedup = r.series_by_label("speedup (SRW/CNRW)").unwrap();
        for (&size, &ratio) in speedup.x.iter().zip(&speedup.y) {
            assert!(
                ratio > 1.0,
                "bell {size}: CNRW should escape faster (ratio {ratio})"
            );
        }
    }

    #[test]
    fn escape_times_grow_with_bell_size() {
        let r = run(&Theorem3Config::quick());
        let srw = r.series_by_label("SRW mean escape steps").unwrap();
        assert!(srw.y[1] > srw.y[0], "{:?}", srw.y);
    }
}
