//! Pin the serialization port: existing artifacts written by the historical
//! hand-rolled JSON writer must parse and re-emit **byte-identically**
//! through the `osn-serde`-backed [`ExperimentResult`] implementation.

use osn_experiments::ExperimentResult;

#[test]
fn bench_walkers_fixture_roundtrips_byte_identically() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_walkers.json");
    let Ok(text) = std::fs::read_to_string(path) else {
        // The perf baseline is re-recordable and may be absent on a fresh
        // checkout; the synthetic fixture below still pins the format.
        return;
    };
    let parsed = ExperimentResult::from_json(&text).expect("fixture parses");
    assert_eq!(parsed.to_json(), text.trim_end(), "byte-identical re-emit");
}

#[test]
fn historical_layout_is_pinned() {
    use osn_experiments::Series;
    let r = ExperimentResult::new("figX", "Demo", "Query Cost", "Relative Error")
        .with_series(Series::new("SRW", vec![20.0, 40.0], vec![0.5, 0.25]))
        .with_series(Series::new("odd", vec![1e-9], vec![f64::INFINITY]))
        .with_note("synthetic demo data");
    let expected = concat!(
        "{\n",
        "  \"id\": \"figX\",\n",
        "  \"title\": \"Demo\",\n",
        "  \"x_label\": \"Query Cost\",\n",
        "  \"y_label\": \"Relative Error\",\n",
        "  \"series\": [\n",
        "    {\n",
        "      \"label\": \"SRW\",\n",
        "      \"x\": [20.0, 40.0],\n",
        "      \"y\": [0.5, 0.25]\n",
        "    },\n",
        "    {\n",
        "      \"label\": \"odd\",\n",
        "      \"x\": [0.000000001],\n",
        "      \"y\": [\"inf\"]\n",
        "    }\n",
        "  ],\n",
        "  \"notes\": [\"synthetic demo data\"]\n",
        "}",
    );
    assert_eq!(r.to_json(), expected);
    assert_eq!(ExperimentResult::from_json(expected).unwrap(), r);
}

#[test]
fn empty_series_layout_is_pinned() {
    let r = ExperimentResult::new("e", "E", "x", "y");
    let expected = concat!(
        "{\n",
        "  \"id\": \"e\",\n",
        "  \"title\": \"E\",\n",
        "  \"x_label\": \"x\",\n",
        "  \"y_label\": \"y\",\n",
        "  \"series\": [],\n",
        "  \"notes\": []\n",
        "}",
    );
    assert_eq!(r.to_json(), expected);
}
