//! Clustering coefficients and triangle counting.

use crate::{CsrGraph, NodeId};

/// Number of edges among the neighbors of `v` (i.e. triangles through `v`).
///
/// Uses sorted-list intersection between `N(v)` and each neighbor's list,
/// counting each neighbor-pair edge once.
fn links_among_neighbors(graph: &CsrGraph, v: NodeId) -> u64 {
    let ns = graph.neighbors(v);
    let mut links = 0u64;
    for (i, &u) in ns.iter().enumerate() {
        // Intersect ns[i+1..] with N(u) by merge; both are sorted.
        let rest = &ns[i + 1..];
        let nu = graph.neighbors(u);
        let (mut a, mut b) = (0usize, 0usize);
        while a < rest.len() && b < nu.len() {
            match rest[a].cmp(&nu[b]) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    links += 1;
                    a += 1;
                    b += 1;
                }
            }
        }
    }
    links
}

/// Local clustering coefficient of `v`:
/// `2 * links_among_neighbors / (k_v (k_v - 1))`, and 0 when `k_v < 2`.
pub fn local_clustering_coefficient(graph: &CsrGraph, v: NodeId) -> f64 {
    let k = graph.degree(v);
    if k < 2 {
        return 0.0;
    }
    let links = links_among_neighbors(graph, v);
    2.0 * links as f64 / (k as f64 * (k as f64 - 1.0))
}

/// Average of local clustering coefficients over all nodes (the "average
/// clustering coefficient" column of the paper's Table 1; nodes with degree
/// < 2 contribute 0).
pub fn average_clustering_coefficient(graph: &CsrGraph) -> f64 {
    if graph.node_count() == 0 {
        return 0.0;
    }
    let sum: f64 = graph
        .nodes()
        .map(|v| local_clustering_coefficient(graph, v))
        .sum();
    sum / graph.node_count() as f64
}

/// Global clustering coefficient (transitivity):
/// `3 * triangles / open-or-closed wedges`.
pub fn global_clustering_coefficient(graph: &CsrGraph) -> f64 {
    let triangles = triangle_count(graph);
    let wedges: u64 = graph
        .nodes()
        .map(|v| {
            let k = graph.degree(v) as u64;
            k * k.saturating_sub(1) / 2
        })
        .sum();
    if wedges == 0 {
        return 0.0;
    }
    3.0 * triangles as f64 / wedges as f64
}

/// Exact triangle count, each triangle counted once.
///
/// Per-node neighbor-pair intersection counts each triangle three times
/// (once per corner); we divide at the end. `O(sum_v k_v^2)` worst case.
pub fn triangle_count(graph: &CsrGraph) -> u64 {
    let total: u64 = graph.nodes().map(|v| links_among_neighbors(graph, v)).sum();
    total / 3
}

/// Compute average clustering and triangle count in one pass (both need
/// `links_among_neighbors`, so fusing halves the work for Table 1).
pub(crate) fn clustering_and_triangles(graph: &CsrGraph) -> (f64, u64) {
    if graph.node_count() == 0 {
        return (0.0, 0);
    }
    let mut cc_sum = 0.0f64;
    let mut link_sum = 0u64;
    for v in graph.nodes() {
        let k = graph.degree(v);
        let links = links_among_neighbors(graph, v);
        link_sum += links;
        if k >= 2 {
            cc_sum += 2.0 * links as f64 / (k as f64 * (k as f64 - 1.0));
        }
    }
    (cc_sum / graph.node_count() as f64, link_sum / 3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn complete(n: u32) -> CsrGraph {
        let mut b = GraphBuilder::new();
        for i in 0..n {
            for j in (i + 1)..n {
                b.push_edge(i, j);
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn complete_graph_triangles() {
        // K5 has C(5,3) = 10 triangles; clustering 1.
        let g = complete(5);
        assert_eq!(triangle_count(&g), 10);
        assert!((average_clustering_coefficient(&g) - 1.0).abs() < 1e-12);
        assert!((global_clustering_coefficient(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn path_has_no_triangles() {
        let g = GraphBuilder::new()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .build()
            .unwrap();
        assert_eq!(triangle_count(&g), 0);
        assert_eq!(average_clustering_coefficient(&g), 0.0);
        assert_eq!(global_clustering_coefficient(&g), 0.0);
    }

    #[test]
    fn triangle_plus_pendant() {
        // Triangle 0-1-2 with pendant 3 attached to 0.
        let g = GraphBuilder::new()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(0, 2)
            .add_edge(0, 3)
            .build()
            .unwrap();
        assert_eq!(triangle_count(&g), 1);
        // cc(0) = 2*1/(3*2) = 1/3, cc(1) = cc(2) = 1, cc(3) = 0
        let expected = (1.0 / 3.0 + 1.0 + 1.0 + 0.0) / 4.0;
        assert!((average_clustering_coefficient(&g) - expected).abs() < 1e-12);
        assert!((local_clustering_coefficient(&g, crate::NodeId(0)) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn barbell_triangle_count_matches_table1() {
        // Table 1: barbell(50,50) has 39200 triangles = 2 * C(50,3).
        let g = crate::generators::barbell(50, 50).unwrap();
        assert_eq!(triangle_count(&g), 2 * 50 * 49 * 48 / 6);
        assert_eq!(2 * 50 * 49 * 48 / 6, 39200);
    }

    #[test]
    fn clustered_graph_triangles_match_table1() {
        // Table 1: clustering graph has 23780 triangles
        // = C(10,3) + C(30,3) + C(50,3).
        let g = crate::generators::clustered_cliques(&Default::default()).unwrap();
        let expected = 10 * 9 * 8 / 6 + 30 * 29 * 28 / 6 + 50 * 49 * 48 / 6;
        assert_eq!(expected, 23780);
        assert_eq!(triangle_count(&g), 23780);
    }

    #[test]
    fn fused_pass_matches_separate() {
        let g = crate::generators::erdos_renyi(200, 0.05, 1).unwrap();
        let (cc, tri) = clustering_and_triangles(&g);
        assert!((cc - average_clustering_coefficient(&g)).abs() < 1e-12);
        assert_eq!(tri, triangle_count(&g));
    }
}
