//! Connected components and largest-connected-subgraph extraction.

use crate::{CsrGraph, GraphBuilder, NodeId, Result};

/// Label every node with its connected component, `0..component_count`,
/// numbered in order of first appearance (so node 0 is always in
/// component 0). Iterative BFS; `O(|V| + |E|)`.
pub fn connected_components(graph: &CsrGraph) -> Vec<usize> {
    const UNVISITED: usize = usize::MAX;
    let n = graph.node_count();
    let mut label = vec![UNVISITED; n];
    let mut queue: Vec<NodeId> = Vec::new();
    let mut next_label = 0usize;
    for start in graph.nodes() {
        if label[start.index()] != UNVISITED {
            continue;
        }
        label[start.index()] = next_label;
        queue.push(start);
        while let Some(v) = queue.pop() {
            for &u in graph.neighbors(v) {
                if label[u.index()] == UNVISITED {
                    label[u.index()] = next_label;
                    queue.push(u);
                }
            }
        }
        next_label += 1;
    }
    label
}

/// Whether the graph is a single connected component.
pub fn is_connected(graph: &CsrGraph) -> bool {
    let labels = connected_components(graph);
    labels.iter().all(|&l| l == 0)
}

/// Extract the largest connected component as its own graph (node ids
/// compacted to `0..size`), returning also the mapping from new id to
/// original id.
///
/// The paper does exactly this for the Yelp dataset ("we extracted the
/// largest connected subgraph containing 119,839 users out of 252,898").
///
/// # Errors
/// Propagates builder errors (never for non-empty input graphs).
pub fn largest_connected_subgraph(graph: &CsrGraph) -> Result<(CsrGraph, Vec<NodeId>)> {
    let labels = connected_components(graph);
    let component_count = labels.iter().copied().max().map_or(0, |m| m + 1);
    let mut sizes = vec![0usize; component_count];
    for &l in &labels {
        sizes[l] += 1;
    }
    let largest = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, &s)| s)
        .map(|(i, _)| i)
        .unwrap_or(0);

    // Compact id mapping for members of the winning component.
    let mut new_id = vec![u32::MAX; graph.node_count()];
    let mut original = Vec::with_capacity(sizes.get(largest).copied().unwrap_or(0));
    for v in graph.nodes() {
        if labels[v.index()] == largest {
            new_id[v.index()] = original.len() as u32;
            original.push(v);
        }
    }

    let mut builder = GraphBuilder::new().with_nodes(original.len());
    for (u, v) in graph.edges() {
        if labels[u.index()] == largest {
            builder.push_edge(new_id[u.index()], new_id[v.index()]);
        }
    }
    Ok((builder.build()?, original))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_component() {
        let g = GraphBuilder::new()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .build()
            .unwrap();
        assert!(is_connected(&g));
        assert_eq!(connected_components(&g), vec![0, 0, 0]);
    }

    #[test]
    fn two_components_labeled_in_order() {
        let g = GraphBuilder::new()
            .add_edge(0, 1)
            .add_edge(2, 3)
            .build()
            .unwrap();
        assert!(!is_connected(&g));
        assert_eq!(connected_components(&g), vec![0, 0, 1, 1]);
    }

    #[test]
    fn isolated_nodes_are_their_own_components() {
        let g = GraphBuilder::new()
            .with_nodes(4)
            .add_edge(0, 1)
            .build()
            .unwrap();
        let labels = connected_components(&g);
        assert_eq!(labels[0], labels[1]);
        assert_ne!(labels[2], labels[3]);
        assert_ne!(labels[2], labels[0]);
    }

    #[test]
    fn lcc_extraction() {
        // Component A: 0-1-2 (path). Component B: 3-4.
        let g = GraphBuilder::new()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(3, 4)
            .build()
            .unwrap();
        let (lcc, original) = largest_connected_subgraph(&g).unwrap();
        assert_eq!(lcc.node_count(), 3);
        assert_eq!(lcc.edge_count(), 2);
        assert_eq!(original, vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert!(is_connected(&lcc));
    }

    #[test]
    fn lcc_of_connected_graph_is_identity() {
        let g = GraphBuilder::new()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .build()
            .unwrap();
        let (lcc, original) = largest_connected_subgraph(&g).unwrap();
        assert_eq!(lcc, g);
        assert_eq!(original.len(), 3);
    }

    #[test]
    fn lcc_prefers_larger_later_component() {
        // Component 0: {0,1}; component 1: {2,3,4,5} — larger, appears later.
        let g = GraphBuilder::new()
            .add_edge(0, 1)
            .add_edge(2, 3)
            .add_edge(3, 4)
            .add_edge(4, 5)
            .build()
            .unwrap();
        let (lcc, original) = largest_connected_subgraph(&g).unwrap();
        assert_eq!(lcc.node_count(), 4);
        assert_eq!(original[0], NodeId(2));
    }

    use crate::GraphBuilder;
}
