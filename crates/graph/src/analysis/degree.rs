//! Degree statistics and histograms.

use crate::CsrGraph;

/// Summary statistics of a graph's degree sequence.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree (`2|E| / |V|`).
    pub mean: f64,
    /// Median degree.
    pub median: f64,
    /// Population variance of the degree sequence.
    pub variance: f64,
}

impl DegreeStats {
    /// Compute degree statistics for a graph.
    pub fn of(graph: &CsrGraph) -> DegreeStats {
        let mut degrees: Vec<usize> = graph.nodes().map(|v| graph.degree(v)).collect();
        degrees.sort_unstable();
        let n = degrees.len();
        assert!(n > 0, "graphs are never empty by construction");
        let mean = degrees.iter().sum::<usize>() as f64 / n as f64;
        let variance = degrees
            .iter()
            .map(|&d| (d as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        let median = if n % 2 == 1 {
            degrees[n / 2] as f64
        } else {
            (degrees[n / 2 - 1] + degrees[n / 2]) as f64 / 2.0
        };
        DegreeStats {
            min: degrees[0],
            max: degrees[n - 1],
            mean,
            median,
            variance,
        }
    }
}

/// Histogram of the degree sequence: `hist[k]` = number of nodes with
/// degree `k`. Length is `max_degree + 1`.
pub fn degree_histogram(graph: &CsrGraph) -> Vec<usize> {
    let mut hist = vec![0usize; graph.max_degree() + 1];
    for v in graph.nodes() {
        hist[graph.degree(v)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn stats_of_star() {
        let g = GraphBuilder::new()
            .add_edge(0, 1)
            .add_edge(0, 2)
            .add_edge(0, 3)
            .add_edge(0, 4)
            .build()
            .unwrap();
        let s = DegreeStats::of(&g);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert!((s.mean - 8.0 / 5.0).abs() < 1e-12);
        assert_eq!(s.median, 1.0);
        assert!(s.variance > 0.0);
    }

    #[test]
    fn stats_of_regular_graph_have_zero_variance() {
        // 4-cycle: all degrees 2.
        let g = GraphBuilder::new()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(2, 3)
            .add_edge(3, 0)
            .build()
            .unwrap();
        let s = DegreeStats::of(&g);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.median, 2.0);
    }

    #[test]
    fn histogram_sums_to_node_count() {
        let g = crate::generators::erdos_renyi(100, 0.05, 1).unwrap();
        let hist = degree_histogram(&g);
        assert_eq!(hist.iter().sum::<usize>(), 100);
        assert_eq!(hist.len(), g.max_degree() + 1);
    }

    #[test]
    fn even_length_median_averages() {
        // Path 0-1-2-3: degrees [1,2,2,1] -> sorted [1,1,2,2] -> median 1.5
        let g = GraphBuilder::new()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(2, 3)
            .build()
            .unwrap();
        assert_eq!(DegreeStats::of(&g).median, 1.5);
    }
}
