//! Structural predictors of random-walk mixing: degree assortativity and
//! cut conductance.
//!
//! The paper's entire premise is that burn-in cost is governed by topology —
//! "ill-formed" low-conductance graphs are where history-aware walks pay
//! off. These measures quantify that on any graph, which is how the
//! dataset stand-ins in `osn-datasets` are calibrated and how a user can
//! predict, before spending budget, whether CNRW/GNRW will help on their
//! network.

use crate::{CsrGraph, NodeId};

/// Pearson degree assortativity coefficient (Newman):
/// correlation of the degrees at the two ends of an edge, in `[-1, 1]`.
///
/// Social networks are usually assortative (hubs befriend hubs, r > 0);
/// crawled follower graphs are often disassortative. Returns `None` for
/// graphs with no edges or zero degree variance at edge endpoints (e.g.
/// regular graphs, where the coefficient is undefined).
pub fn degree_assortativity(graph: &CsrGraph) -> Option<f64> {
    let m = graph.edge_count();
    if m == 0 {
        return None;
    }
    // Accumulate over each undirected edge once, using both orientations
    // (the standard symmetric estimator).
    let mut sum_xy = 0.0;
    let mut sum_x = 0.0;
    let mut sum_x2 = 0.0;
    let mut count = 0.0;
    for (u, v) in graph.edges() {
        let ku = graph.degree(u) as f64;
        let kv = graph.degree(v) as f64;
        // Both orientations: (ku, kv) and (kv, ku).
        sum_xy += 2.0 * ku * kv;
        sum_x += ku + kv;
        sum_x2 += ku * ku + kv * kv;
        count += 2.0;
    }
    let mean = sum_x / count;
    let var = sum_x2 / count - mean * mean;
    if var <= 1e-12 {
        return None;
    }
    let cov = sum_xy / count - mean * mean;
    Some(cov / var)
}

/// Conductance of a node set `S`:
/// `phi(S) = cut(S, V\S) / min(vol(S), vol(V\S))`,
/// where `vol` is the sum of degrees and `cut` counts edges crossing the
/// boundary. Small conductance = walk trap.
///
/// Returns `None` when `S` or its complement has zero volume.
///
/// ```
/// use osn_graph::generators::barbell;
/// use osn_graph::analysis::conductance;
/// let g = barbell(10, 10).unwrap();
/// let left_bell: Vec<bool> = (0..20).map(|i| i < 10).collect();
/// // One bridge edge over a dense bell: tiny conductance = severe trap.
/// assert!(conductance(&g, &left_bell).unwrap() < 0.02);
/// ```
pub fn conductance(graph: &CsrGraph, in_set: &[bool]) -> Option<f64> {
    assert_eq!(in_set.len(), graph.node_count(), "mask length mismatch");
    let mut cut = 0u64;
    let mut vol_s = 0u64;
    let mut vol_rest = 0u64;
    for v in graph.nodes() {
        let k = graph.degree(v) as u64;
        if in_set[v.index()] {
            vol_s += k;
            for &u in graph.neighbors(v) {
                if !in_set[u.index()] {
                    cut += 1;
                }
            }
        } else {
            vol_rest += k;
        }
    }
    let denom = vol_s.min(vol_rest);
    if denom == 0 {
        return None;
    }
    Some(cut as f64 / denom as f64)
}

/// The minimum conductance over the parts of a disjoint partition
/// (e.g. planted communities): a proxy for the worst walk trap in the graph.
///
/// Returns `None` for a trivial partition (fewer than 2 non-empty parts).
pub fn partition_conductance(graph: &CsrGraph, labels: &[u32]) -> Option<f64> {
    assert_eq!(labels.len(), graph.node_count(), "label length mismatch");
    let parts: std::collections::BTreeSet<u32> = labels.iter().copied().collect();
    if parts.len() < 2 {
        return None;
    }
    let mut worst: Option<f64> = None;
    for part in parts {
        let mask: Vec<bool> = labels.iter().map(|&l| l == part).collect();
        if let Some(phi) = conductance(graph, &mask) {
            worst = Some(match worst {
                Some(w) => w.min(phi),
                None => phi,
            });
        }
    }
    worst
}

/// Quick mask helper: the `k`-hop ball around `center` (including it).
pub fn ball_mask(graph: &CsrGraph, center: NodeId, hops: usize) -> Vec<bool> {
    let mut mask = vec![false; graph.node_count()];
    mask[center.index()] = true;
    let mut frontier = vec![center];
    for _ in 0..hops {
        let mut next = Vec::new();
        for &v in &frontier {
            for &u in graph.neighbors(v) {
                if !mask[u.index()] {
                    mask[u.index()] = true;
                    next.push(u);
                }
            }
        }
        frontier = next;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{barbell, erdos_renyi};
    use crate::GraphBuilder;

    #[test]
    fn star_is_perfectly_disassortative() {
        let g = GraphBuilder::new()
            .add_edge(0, 1)
            .add_edge(0, 2)
            .add_edge(0, 3)
            .build()
            .unwrap();
        let r = degree_assortativity(&g).unwrap();
        assert!((r + 1.0).abs() < 1e-9, "star r = {r}");
    }

    #[test]
    fn regular_graph_assortativity_undefined() {
        // 4-cycle: all degrees equal -> zero variance -> None.
        let g = GraphBuilder::new()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(2, 3)
            .add_edge(3, 0)
            .build()
            .unwrap();
        assert_eq!(degree_assortativity(&g), None);
    }

    #[test]
    fn er_graph_assortativity_near_zero() {
        let g = erdos_renyi(2000, 0.01, 1).unwrap();
        let r = degree_assortativity(&g).unwrap();
        assert!(r.abs() < 0.1, "ER r = {r}");
    }

    #[test]
    fn barbell_bell_has_tiny_conductance() {
        let g = barbell(20, 20).unwrap();
        let mask: Vec<bool> = (0..40).map(|i| i < 20).collect();
        let phi = conductance(&g, &mask).unwrap();
        // One crossing edge over vol(bell) = 2*C(20,2)+1 = 381.
        assert!((phi - 1.0 / 381.0).abs() < 1e-9, "phi = {phi}");
    }

    #[test]
    fn full_or_empty_set_has_no_conductance() {
        let g = barbell(5, 5).unwrap();
        assert_eq!(conductance(&g, &[true; 10]), None);
        assert_eq!(conductance(&g, &[false; 10]), None);
    }

    #[test]
    fn partition_conductance_flags_the_worst_trap() {
        let g = barbell(10, 10).unwrap();
        let labels: Vec<u32> = (0..20).map(|i| if i < 10 { 0 } else { 1 }).collect();
        let phi = partition_conductance(&g, &labels).unwrap();
        assert!(phi < 0.02, "barbell partition phi = {phi}");
        // Trivial partition: None.
        assert_eq!(partition_conductance(&g, &[0; 20]), None);
    }

    #[test]
    fn well_connected_graph_has_high_conductance() {
        let g = erdos_renyi(200, 0.2, 2).unwrap();
        let mask: Vec<bool> = (0..200).map(|i| i < 100).collect();
        let phi = conductance(&g, &mask).unwrap();
        assert!(phi > 0.3, "dense ER phi = {phi}");
    }

    #[test]
    fn ball_mask_grows_with_hops() {
        let g = barbell(6, 6).unwrap();
        let b0 = ball_mask(&g, NodeId(0), 0);
        assert_eq!(b0.iter().filter(|&&x| x).count(), 1);
        let b1 = ball_mask(&g, NodeId(0), 1);
        assert_eq!(b1.iter().filter(|&&x| x).count(), 6); // its clique
        let b2 = ball_mask(&g, NodeId(0), 2);
        assert!(b2.iter().filter(|&&x| x).count() > 6); // reaches the bridge
    }
}
