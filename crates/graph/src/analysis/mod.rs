//! Graph analysis passes: everything needed to regenerate Table 1 of the
//! paper (nodes, edges, average degree, average clustering coefficient,
//! triangle count) plus the component machinery used to extract the largest
//! connected subgraph (as the paper does for Yelp).

mod clustering;
pub mod components;
mod degree;
mod mixing;

pub use clustering::{
    average_clustering_coefficient, global_clustering_coefficient, local_clustering_coefficient,
    triangle_count,
};
pub use components::{connected_components, is_connected, largest_connected_subgraph};
pub use degree::{degree_histogram, DegreeStats};
pub use mixing::{ball_mask, conductance, degree_assortativity, partition_conductance};

use crate::CsrGraph;

/// The summary statistics of the paper's Table 1, computed for any graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphSummary {
    /// `|V|`.
    pub nodes: usize,
    /// `|E|`.
    pub edges: usize,
    /// `2|E| / |V|`.
    pub average_degree: f64,
    /// Mean of local clustering coefficients (0 for degree < 2 nodes),
    /// matching the convention of the paper's Table 1.
    pub average_clustering_coefficient: f64,
    /// Number of triangles (each counted once).
    pub triangles: u64,
}

/// Compute the Table 1 row for a graph. Runs the exact (not sampled)
/// triangle counter, `O(sum_v k_v^2)` worst case but cache-friendly.
pub fn summarize(graph: &CsrGraph) -> GraphSummary {
    let (avg_cc, triangles) = clustering::clustering_and_triangles(graph);
    GraphSummary {
        nodes: graph.node_count(),
        edges: graph.edge_count(),
        average_degree: graph.average_degree(),
        average_clustering_coefficient: avg_cc,
        triangles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn summary_of_triangle() {
        let g = GraphBuilder::new()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(0, 2)
            .build()
            .unwrap();
        let s = summarize(&g);
        assert_eq!(s.nodes, 3);
        assert_eq!(s.edges, 3);
        assert_eq!(s.triangles, 1);
        assert!((s.average_degree - 2.0).abs() < 1e-12);
        assert!((s.average_clustering_coefficient - 1.0).abs() < 1e-12);
    }

    #[test]
    fn summary_of_star_has_no_triangles() {
        let g = GraphBuilder::new()
            .add_edge(0, 1)
            .add_edge(0, 2)
            .add_edge(0, 3)
            .build()
            .unwrap();
        let s = summarize(&g);
        assert_eq!(s.triangles, 0);
        assert_eq!(s.average_clustering_coefficient, 0.0);
    }
}
