//! Typed per-node attribute columns.
//!
//! The restricted OSN interface returns, along with the neighbor list, "all
//! other attributes of `u`" (paper §2.1). GNRW's grouping strategies and the
//! aggregate estimators both consume those attributes, so the graph substrate
//! carries them as named, typed, dense columns.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::{CsrGraph, GraphError, NodeId, Result};

/// A single dense attribute column; one value per node.
#[derive(Clone, Debug, PartialEq)]
pub enum AttributeColumn {
    /// Unsigned integer attribute (e.g. `reviews_count`, `age`).
    UInt(Arc<Vec<u64>>),
    /// Floating-point attribute (e.g. an activity score).
    Float(Arc<Vec<f64>>),
    /// Small categorical attribute stored as a code per node plus a legend
    /// (e.g. `occupation`, `community`).
    Categorical {
        /// Per-node category code; indexes into `legend`.
        codes: Arc<Vec<u32>>,
        /// Human-readable category names.
        legend: Arc<Vec<String>>,
    },
}

impl AttributeColumn {
    /// Number of node values stored.
    pub fn len(&self) -> usize {
        match self {
            AttributeColumn::UInt(v) => v.len(),
            AttributeColumn::Float(v) => v.len(),
            AttributeColumn::Categorical { codes, .. } => codes.len(),
        }
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Name of the stored type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            AttributeColumn::UInt(_) => "uint",
            AttributeColumn::Float(_) => "float",
            AttributeColumn::Categorical { .. } => "categorical",
        }
    }

    /// Value of node `v` as `f64`, the common currency of estimators.
    /// Categorical attributes surface their code.
    pub fn as_f64(&self, v: NodeId) -> f64 {
        match self {
            AttributeColumn::UInt(col) => col[v.index()] as f64,
            AttributeColumn::Float(col) => col[v.index()],
            AttributeColumn::Categorical { codes, .. } => codes[v.index()] as f64,
        }
    }

    /// Value of node `v` as `u64` if integral.
    pub fn as_u64(&self, v: NodeId) -> Option<u64> {
        match self {
            AttributeColumn::UInt(col) => Some(col[v.index()]),
            AttributeColumn::Categorical { codes, .. } => Some(codes[v.index()] as u64),
            AttributeColumn::Float(_) => None,
        }
    }
}

/// A set of named attribute columns attached to a graph.
///
/// Columns are validated to have exactly one value per node at insertion.
/// Cloning is cheap (`Arc`ed columns), so a [`NodeAttributes`] can be shared
/// between the simulated OSN interface and the ground-truth estimator side of
/// an experiment without duplication.
#[derive(Clone, Debug, Default)]
pub struct NodeAttributes {
    node_count: usize,
    columns: BTreeMap<String, AttributeColumn>,
}

impl NodeAttributes {
    /// Empty attribute set for a graph with `node_count` nodes.
    pub fn new(node_count: usize) -> Self {
        NodeAttributes {
            node_count,
            columns: BTreeMap::new(),
        }
    }

    /// Empty attribute set sized for `graph`.
    pub fn for_graph(graph: &CsrGraph) -> Self {
        Self::new(graph.node_count())
    }

    /// Number of nodes the columns are sized for.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// Names of all columns, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.columns.keys().map(String::as_str)
    }

    /// Insert (or replace) an unsigned integer column.
    ///
    /// # Errors
    /// [`GraphError::AttributeLengthMismatch`] if `values.len()` differs from
    /// the node count.
    pub fn insert_uint(&mut self, name: impl Into<String>, values: Vec<u64>) -> Result<()> {
        let name = name.into();
        self.check_len(&name, values.len())?;
        self.columns
            .insert(name, AttributeColumn::UInt(Arc::new(values)));
        Ok(())
    }

    /// Insert (or replace) a float column.
    pub fn insert_float(&mut self, name: impl Into<String>, values: Vec<f64>) -> Result<()> {
        let name = name.into();
        self.check_len(&name, values.len())?;
        self.columns
            .insert(name, AttributeColumn::Float(Arc::new(values)));
        Ok(())
    }

    /// Insert (or replace) a categorical column.
    ///
    /// # Errors
    /// Length mismatch, or any code not covered by the legend.
    pub fn insert_categorical(
        &mut self,
        name: impl Into<String>,
        codes: Vec<u32>,
        legend: Vec<String>,
    ) -> Result<()> {
        let name = name.into();
        self.check_len(&name, codes.len())?;
        if let Some(&bad) = codes.iter().find(|&&c| c as usize >= legend.len()) {
            return Err(GraphError::InvalidGeneratorConfig(format!(
                "categorical `{name}` code {bad} outside legend of {} entries",
                legend.len()
            )));
        }
        self.columns.insert(
            name,
            AttributeColumn::Categorical {
                codes: Arc::new(codes),
                legend: Arc::new(legend),
            },
        );
        Ok(())
    }

    fn check_len(&self, name: &str, got: usize) -> Result<()> {
        if got != self.node_count {
            return Err(GraphError::AttributeLengthMismatch {
                name: name.to_string(),
                got,
                expected: self.node_count,
            });
        }
        Ok(())
    }

    /// Fetch a column by name.
    pub fn column(&self, name: &str) -> Result<&AttributeColumn> {
        self.columns
            .get(name)
            .ok_or_else(|| GraphError::UnknownAttribute(name.to_string()))
    }

    /// Whether a column exists.
    pub fn contains(&self, name: &str) -> bool {
        self.columns.contains_key(name)
    }

    /// Fetch a uint column's data, with a typed error on mismatch.
    pub fn uint(&self, name: &str) -> Result<&[u64]> {
        match self.column(name)? {
            AttributeColumn::UInt(v) => Ok(v),
            other => Err(GraphError::AttributeTypeMismatch {
                name: name.to_string(),
                actual: other.type_name(),
                requested: "uint",
            }),
        }
    }

    /// Fetch a float column's data, with a typed error on mismatch.
    pub fn float(&self, name: &str) -> Result<&[f64]> {
        match self.column(name)? {
            AttributeColumn::Float(v) => Ok(v),
            other => Err(GraphError::AttributeTypeMismatch {
                name: name.to_string(),
                actual: other.type_name(),
                requested: "float",
            }),
        }
    }

    /// Value of `name` for node `v` as `f64`.
    pub fn value_f64(&self, name: &str, v: NodeId) -> Result<f64> {
        Ok(self.column(name)?.as_f64(v))
    }

    /// Ground-truth population mean of a column over all nodes — the target
    /// of the AVG aggregate estimators.
    pub fn population_mean(&self, name: &str) -> Result<f64> {
        let col = self.column(name)?;
        if self.node_count == 0 {
            return Ok(f64::NAN);
        }
        let sum: f64 = (0..self.node_count)
            .map(|i| col.as_f64(NodeId::from_index(i)))
            .sum();
        Ok(sum / self.node_count as f64)
    }

    /// Ground-truth population sum of a column over all nodes.
    pub fn population_sum(&self, name: &str) -> Result<f64> {
        let col = self.column(name)?;
        Ok((0..self.node_count)
            .map(|i| col.as_f64(NodeId::from_index(i)))
            .sum())
    }
}

/// A graph bundled with its node attributes — the full "social network" the
/// simulated interface serves.
#[derive(Clone, Debug)]
pub struct AttributedGraph {
    /// Topology.
    pub graph: CsrGraph,
    /// Node attributes.
    pub attributes: NodeAttributes,
}

impl AttributedGraph {
    /// Bundle a graph with attributes, checking node counts agree.
    ///
    /// # Errors
    /// [`GraphError::AttributeLengthMismatch`] if the attribute set is sized
    /// for a different node count.
    pub fn new(graph: CsrGraph, attributes: NodeAttributes) -> Result<Self> {
        if attributes.node_count() != graph.node_count() {
            return Err(GraphError::AttributeLengthMismatch {
                name: "<attribute set>".to_string(),
                got: attributes.node_count(),
                expected: graph.node_count(),
            });
        }
        Ok(AttributedGraph { graph, attributes })
    }

    /// Bundle a graph with an empty attribute set.
    pub fn bare(graph: CsrGraph) -> Self {
        let attributes = NodeAttributes::for_graph(&graph);
        AttributedGraph { graph, attributes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path3() -> CsrGraph {
        GraphBuilder::new()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .build()
            .unwrap()
    }

    #[test]
    fn insert_and_read_uint() {
        let g = path3();
        let mut attrs = NodeAttributes::for_graph(&g);
        attrs.insert_uint("reviews", vec![5, 0, 10]).unwrap();
        assert_eq!(attrs.uint("reviews").unwrap(), &[5, 0, 10]);
        assert_eq!(attrs.value_f64("reviews", NodeId(2)).unwrap(), 10.0);
    }

    #[test]
    fn length_mismatch_rejected() {
        let g = path3();
        let mut attrs = NodeAttributes::for_graph(&g);
        let err = attrs.insert_uint("reviews", vec![1, 2]).unwrap_err();
        assert!(matches!(err, GraphError::AttributeLengthMismatch { .. }));
    }

    #[test]
    fn type_mismatch_reported() {
        let g = path3();
        let mut attrs = NodeAttributes::for_graph(&g);
        attrs.insert_float("score", vec![0.5, 1.0, 2.0]).unwrap();
        let err = attrs.uint("score").unwrap_err();
        assert!(matches!(err, GraphError::AttributeTypeMismatch { .. }));
        assert!(attrs.float("score").is_ok());
    }

    #[test]
    fn unknown_attribute() {
        let attrs = NodeAttributes::new(3);
        assert!(matches!(
            attrs.column("nope"),
            Err(GraphError::UnknownAttribute(_))
        ));
        assert!(!attrs.contains("nope"));
    }

    #[test]
    fn categorical_codes_validated() {
        let mut attrs = NodeAttributes::new(2);
        let err = attrs
            .insert_categorical("occ", vec![0, 5], vec!["student".into()])
            .unwrap_err();
        assert!(err.to_string().contains("legend"));
        attrs
            .insert_categorical("occ", vec![0, 0], vec!["student".into()])
            .unwrap();
        assert_eq!(attrs.column("occ").unwrap().as_u64(NodeId(1)), Some(0));
    }

    #[test]
    fn population_statistics() {
        let mut attrs = NodeAttributes::new(4);
        attrs.insert_uint("x", vec![1, 2, 3, 4]).unwrap();
        assert!((attrs.population_mean("x").unwrap() - 2.5).abs() < 1e-12);
        assert!((attrs.population_sum("x").unwrap() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn attributed_graph_checks_sizes() {
        let g = path3();
        let attrs = NodeAttributes::new(7);
        assert!(AttributedGraph::new(g.clone(), attrs).is_err());
        let ok = AttributedGraph::bare(g);
        assert_eq!(ok.attributes.node_count(), 3);
    }

    #[test]
    fn float_column_as_f64() {
        let col = AttributeColumn::Float(Arc::new(vec![1.5, 2.5]));
        assert_eq!(col.as_f64(NodeId(1)), 2.5);
        assert_eq!(col.as_u64(NodeId(1)), None);
        assert_eq!(col.len(), 2);
        assert!(!col.is_empty());
    }
}
