//! Deduplicating builder for [`CsrGraph`].

use crate::{CsrGraph, GraphError, NodeId, Result};

/// Incremental builder producing a simple undirected [`CsrGraph`].
///
/// The builder accepts edges in any order, in either endpoint order, with
/// duplicates and self-loops; it normalizes everything at [`build`](Self::build):
///
/// * self-loops are dropped (the paper's access model has no self-edges),
/// * duplicate edges are collapsed,
/// * adjacency lists come out sorted.
///
/// Node count defaults to `max endpoint + 1` but can be forced higher with
/// [`with_nodes`](Self::with_nodes) to include isolated nodes.
///
/// ```
/// use osn_graph::GraphBuilder;
/// let g = GraphBuilder::new()
///     .with_nodes(5)              // node 4 stays isolated
///     .add_edge(0, 1)
///     .add_edge(1, 0)             // duplicate, collapsed
///     .add_edge(2, 2)             // self-loop, dropped
///     .add_edge(2, 3)
///     .build()
///     .unwrap();
/// assert_eq!(g.node_count(), 5);
/// assert_eq!(g.edge_count(), 2);
/// ```
#[derive(Clone, Default)]
pub struct GraphBuilder {
    edges: Vec<(u32, u32)>,
    min_nodes: usize,
}

impl GraphBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// New builder with capacity for `edges` edges reserved up front.
    pub fn with_capacity(edges: usize) -> Self {
        GraphBuilder {
            edges: Vec::with_capacity(edges),
            min_nodes: 0,
        }
    }

    /// Ensure the built graph has at least `n` nodes (ids `0..n`), even if
    /// some of them end up with no incident edges.
    #[must_use]
    pub fn with_nodes(mut self, n: usize) -> Self {
        self.min_nodes = self.min_nodes.max(n);
        self
    }

    /// Add the undirected edge `{u, v}` (builder-style).
    #[must_use]
    pub fn add_edge(mut self, u: u32, v: u32) -> Self {
        self.push_edge(u, v);
        self
    }

    /// Add the undirected edge `{u, v}` (in-place, for loops).
    pub fn push_edge(&mut self, u: u32, v: u32) {
        self.edges.push((u, v));
    }

    /// Add every edge from an iterator of `(u, v)` pairs.
    #[must_use]
    pub fn extend_edges<I: IntoIterator<Item = (u32, u32)>>(mut self, iter: I) -> Self {
        self.edges.extend(iter);
        self
    }

    /// Number of raw (pre-dedup) edges currently staged.
    pub fn staged_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalize into a [`CsrGraph`].
    ///
    /// # Errors
    /// Returns [`GraphError::EmptyGraph`] if no nodes would result.
    pub fn build(self) -> Result<CsrGraph> {
        let GraphBuilder {
            mut edges,
            min_nodes,
        } = self;

        // Normalize to (min, max), drop self loops.
        edges.retain(|&(u, v)| u != v);
        for e in &mut edges {
            if e.0 > e.1 {
                *e = (e.1, e.0);
            }
        }
        edges.sort_unstable();
        edges.dedup();

        let max_endpoint = edges
            .iter()
            .map(|&(u, v)| u.max(v) as usize + 1)
            .max()
            .unwrap_or(0);
        let n = max_endpoint.max(min_nodes);
        if n == 0 {
            return Err(GraphError::EmptyGraph);
        }

        // Degree counting pass.
        let mut degree = vec![0u64; n];
        for &(u, v) in &edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }

        // Prefix sums into offsets.
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u64);
        let mut acc = 0u64;
        for &d in &degree {
            acc += d;
            offsets.push(acc);
        }

        // Scatter pass: cursor per node.
        let mut cursor: Vec<u64> = offsets[..n].to_vec();
        let mut neighbors = vec![NodeId(0); acc as usize];
        for &(u, v) in &edges {
            neighbors[cursor[u as usize] as usize] = NodeId(v);
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize] as usize] = NodeId(u);
            cursor[v as usize] += 1;
        }

        // Because edges were globally sorted by (min, max), per-node lists are
        // NOT automatically sorted for the higher endpoint; sort each slice.
        for i in 0..n {
            let s = offsets[i] as usize;
            let e = offsets[i + 1] as usize;
            neighbors[s..e].sort_unstable();
        }

        CsrGraph::from_parts(offsets, neighbors)
    }
}

impl FromIterator<(u32, u32)> for GraphBuilder {
    fn from_iter<I: IntoIterator<Item = (u32, u32)>>(iter: I) -> Self {
        GraphBuilder::new().extend_edges(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_self_loops() {
        let g = GraphBuilder::new()
            .add_edge(0, 1)
            .add_edge(1, 0)
            .add_edge(0, 1)
            .add_edge(1, 1)
            .build()
            .unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(NodeId(1)), 1);
    }

    #[test]
    fn isolated_nodes_via_with_nodes() {
        let g = GraphBuilder::new()
            .with_nodes(10)
            .add_edge(0, 1)
            .build()
            .unwrap();
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.degree(NodeId(9)), 0);
    }

    #[test]
    fn empty_builder_errors() {
        assert!(matches!(
            GraphBuilder::new().build(),
            Err(GraphError::EmptyGraph)
        ));
    }

    #[test]
    fn nodes_only_no_edges_is_ok() {
        let g = GraphBuilder::new().with_nodes(3).build().unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn from_iterator() {
        let g: GraphBuilder = vec![(0, 1), (1, 2)].into_iter().collect();
        let g = g.build().unwrap();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn adjacency_symmetric_and_sorted() {
        let g = GraphBuilder::new()
            .add_edge(5, 2)
            .add_edge(5, 9)
            .add_edge(5, 0)
            .add_edge(2, 9)
            .build()
            .unwrap();
        assert_eq!(g.neighbors(NodeId(5)), &[NodeId(0), NodeId(2), NodeId(9)]);
        for (u, v) in g.edges().collect::<Vec<_>>() {
            assert!(g.has_edge(v, u));
        }
    }

    #[test]
    fn staged_edges_counts_raw() {
        let b = GraphBuilder::new().add_edge(0, 1).add_edge(0, 1);
        assert_eq!(b.staged_edges(), 2);
    }

    #[test]
    fn push_edge_in_place() {
        let mut b = GraphBuilder::new();
        for i in 0..10u32 {
            b.push_edge(i, i + 1);
        }
        let g = b.build().unwrap();
        assert_eq!(g.node_count(), 11);
        assert_eq!(g.edge_count(), 10);
    }
}
