//! Bounded-memory streaming construction of [`CompactCsr`] snapshots.
//!
//! [`CompactBuilder`] ingests an arbitrary-order edge stream and produces
//! the same bytes [`CompactCsr::from_csr`] would, without ever holding the
//! uncompressed adjacency in memory. It is an external-sort pipeline:
//!
//! 1. **Stage.** Every accepted edge `{u, v}` becomes two arcs packed as
//!    `u64` values `(src << 32) | dst` in a fixed-capacity chunk buffer.
//! 2. **Spill.** A full chunk is sorted, deduplicated, and written raw to a
//!    temp file (one `u64` LE per arc); the buffer is reused.
//! 3. **Merge.** `finish` k-way merges the sorted runs (plus the resident
//!    chunk) through a min-heap with global dedup, encoding each node's run
//!    on the fly as consecutive same-source arcs stream past.
//!
//! Peak memory is `chunk_capacity × 8 B` for the stage buffer, one
//! `BufReader` per spilled run, `8 B × (n + 1)` offsets, and the compressed
//! output itself — independent of how the input was ordered and far below
//! the `≈12 B/arc` a plain CSR build of a 10⁸-edge graph would need. The
//! output is byte-identical for any chunk capacity and any input
//! permutation.

use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::PathBuf;

use super::{CompactCsr, Encoder};
use crate::{GraphError, NodeId, Result};

/// Default stage-buffer capacity in arcs (= 2× edges): 16 Mi arcs ≈ 128 MiB.
pub const DEFAULT_CHUNK_CAPACITY: usize = 16 << 20;

/// Streaming, bounded-memory builder for [`CompactCsr`] (see module docs).
///
/// ```
/// use osn_graph::compact::CompactBuilder;
/// use osn_graph::NodeId;
///
/// let mut b = CompactBuilder::new();
/// b.add_edge(0, 1);
/// b.add_edge(1, 2);
/// let g = b.finish().unwrap();
/// assert_eq!(g.degree(NodeId(1)), 2);
/// ```
pub struct CompactBuilder {
    chunk: Vec<u64>,
    chunk_capacity: usize,
    runs: Vec<SpillRun>,
    temp_dir: PathBuf,
    min_nodes: usize,
    max_node: Option<u32>,
    staged_edges: u64,
}

impl Default for CompactBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl CompactBuilder {
    /// Builder with the default chunk capacity and the system temp dir.
    pub fn new() -> Self {
        Self::with_chunk_capacity(DEFAULT_CHUNK_CAPACITY)
    }

    /// Builder staging at most `arcs` arcs (min 2) in memory before
    /// spilling a sorted run to disk.
    pub fn with_chunk_capacity(arcs: usize) -> Self {
        CompactBuilder {
            chunk: Vec::new(),
            chunk_capacity: arcs.max(2),
            runs: Vec::new(),
            temp_dir: std::env::temp_dir(),
            min_nodes: 0,
            max_node: None,
            staged_edges: 0,
        }
    }

    /// Spill runs to `dir` instead of the system temp dir.
    #[must_use]
    pub fn with_temp_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.temp_dir = dir.into();
        self
    }

    /// Ensure the built graph has at least `n` nodes, even if the trailing
    /// ids never appear in an edge.
    #[must_use]
    pub fn with_min_nodes(mut self, n: usize) -> Self {
        self.min_nodes = self.min_nodes.max(n);
        self
    }

    /// Stage the undirected edge `{u, v}`. Self-loops are dropped and
    /// duplicates collapse during the merge, mirroring
    /// [`GraphBuilder`](crate::GraphBuilder).
    ///
    /// # Errors
    /// Propagates I/O failures from spilling a full chunk.
    pub fn add_edge(&mut self, u: u32, v: u32) -> Result<()> {
        if u == v {
            return Ok(());
        }
        if self.chunk.capacity() == 0 {
            self.chunk.reserve_exact(self.chunk_capacity);
        }
        let hi = u.max(v);
        self.max_node = Some(self.max_node.map_or(hi, |m| m.max(hi)));
        self.staged_edges += 1;
        self.chunk.push(pack(u, v));
        self.chunk.push(pack(v, u));
        if self.chunk.len() + 1 >= self.chunk_capacity {
            self.spill()?;
        }
        Ok(())
    }

    /// Stage every edge from an iterator of `(u, v)` pairs.
    ///
    /// # Errors
    /// Propagates I/O failures from spilling.
    pub fn add_edges<I: IntoIterator<Item = (u32, u32)>>(&mut self, iter: I) -> Result<()> {
        for (u, v) in iter {
            self.add_edge(u, v)?;
        }
        Ok(())
    }

    /// Raw (pre-dedup) edges staged so far.
    pub fn staged_edges(&self) -> u64 {
        self.staged_edges
    }

    /// Sorted runs spilled to disk so far.
    pub fn spilled_runs(&self) -> usize {
        self.runs.len()
    }

    fn spill(&mut self) -> Result<()> {
        self.chunk.sort_unstable();
        self.chunk.dedup();
        let path = self.temp_dir.join(format!(
            "osn-compact-spill-{}-{:p}-{}.run",
            std::process::id(),
            &self.runs,
            self.runs.len()
        ));
        let mut w = BufWriter::new(File::create(&path)?);
        for &arc in &self.chunk {
            w.write_all(&arc.to_le_bytes())?;
        }
        w.flush()?;
        drop(w);
        let file = File::open(&path)?;
        self.runs.push(SpillRun { file, path });
        self.chunk.clear();
        Ok(())
    }

    /// Merge all runs and assemble the snapshot. Validation is implicit:
    /// the encoder only ever sees sorted deduplicated arcs.
    ///
    /// # Errors
    /// [`GraphError::EmptyGraph`] when no nodes would result, otherwise
    /// I/O failures from reading spilled runs.
    pub fn finish(mut self) -> Result<CompactCsr> {
        self.chunk.sort_unstable();
        self.chunk.dedup();
        let n = self
            .max_node
            .map_or(0, |m| m as usize + 1)
            .max(self.min_nodes);
        if n == 0 {
            return Err(GraphError::EmptyGraph);
        }

        let mut enc = Encoder::new(n);
        let mut run = Vec::new();
        let mut next_node = 0u32;

        // The resident chunk merges as one more (already sorted) run.
        if self.runs.is_empty() {
            // Fast path: everything fit in memory.
            let mut prev = None;
            for &arc in &self.chunk {
                if prev == Some(arc) {
                    continue;
                }
                prev = Some(arc);
                let (src, dst) = unpack(arc);
                emit(&mut enc, &mut run, &mut next_node, src, dst);
            }
        } else {
            let mut sources: Vec<ArcSource> = Vec::with_capacity(self.runs.len() + 1);
            for spill in self.runs.drain(..) {
                sources.push(ArcSource::from_spill(spill)?);
            }
            let chunk = std::mem::take(&mut self.chunk);
            sources.push(ArcSource::from_memory(chunk));

            let mut heap: BinaryHeap<std::cmp::Reverse<(u64, usize)>> = BinaryHeap::new();
            for (i, s) in sources.iter_mut().enumerate() {
                if let Some(arc) = s.next()? {
                    heap.push(std::cmp::Reverse((arc, i)));
                }
            }
            let mut prev = None;
            while let Some(std::cmp::Reverse((arc, i))) = heap.pop() {
                if let Some(next) = sources[i].next()? {
                    heap.push(std::cmp::Reverse((next, i)));
                }
                if prev == Some(arc) {
                    continue; // cross-run duplicate
                }
                prev = Some(arc);
                let (src, dst) = unpack(arc);
                emit(&mut enc, &mut run, &mut next_node, src, dst);
            }
        }

        // Trailing runs: the last touched node, then empties out to n.
        if !run.is_empty() {
            enc.push_run(&run);
            run.clear();
            next_node += 1;
        }
        while (next_node as usize) < n {
            enc.push_run(&[]);
            next_node += 1;
        }
        enc.finish()
    }
}

#[inline]
fn pack(src: u32, dst: u32) -> u64 {
    (u64::from(src) << 32) | u64::from(dst)
}

#[inline]
fn unpack(arc: u64) -> (u32, u32) {
    ((arc >> 32) as u32, arc as u32)
}

/// Route one sorted arc into the encoder, closing out prior nodes' runs.
#[inline]
fn emit(enc: &mut Encoder, run: &mut Vec<NodeId>, next_node: &mut u32, src: u32, dst: u32) {
    if src != *next_node || run.is_empty() {
        if !run.is_empty() {
            enc.push_run(run);
            run.clear();
            *next_node += 1;
        }
        while *next_node < src {
            enc.push_run(&[]);
            *next_node += 1;
        }
    }
    run.push(NodeId(dst));
}

/// A sorted run spilled to a temp file; the file is removed on drop.
struct SpillRun {
    file: File,
    path: PathBuf,
}

impl Drop for SpillRun {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// One merge input: a buffered spilled run or the resident chunk.
enum ArcSource {
    Disk {
        reader: BufReader<File>,
        /// Keeps the temp file alive (and cleaned up) through the merge.
        _spill: SpillRun,
    },
    Memory {
        arcs: Vec<u64>,
        at: usize,
    },
}

impl ArcSource {
    fn from_spill(spill: SpillRun) -> Result<Self> {
        let reader = BufReader::with_capacity(1 << 20, spill.file.try_clone()?);
        Ok(ArcSource::Disk {
            reader,
            _spill: spill,
        })
    }

    fn from_memory(arcs: Vec<u64>) -> Self {
        ArcSource::Memory { arcs, at: 0 }
    }

    fn next(&mut self) -> Result<Option<u64>> {
        match self {
            ArcSource::Disk { reader, .. } => {
                let mut buf = [0u8; 8];
                match reader.read_exact(&mut buf) {
                    Ok(()) => Ok(Some(u64::from_le_bytes(buf))),
                    Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Ok(None),
                    Err(e) => Err(GraphError::Io(e)),
                }
            }
            ArcSource::Memory { arcs, at } => {
                if *at < arcs.len() {
                    let v = arcs[*at];
                    *at += 1;
                    Ok(Some(v))
                } else {
                    Ok(None)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn edges(seed: u64, n: u32, count: usize) -> Vec<(u32, u32)> {
        // Deterministic pseudo-random edge list with duplicates/self-loops.
        let mut out = Vec::with_capacity(count);
        for i in 0..count as u64 {
            let r = crate::mix::splitmix64_stream(seed, i);
            out.push(((r % u64::from(n)) as u32, ((r >> 32) % u64::from(n)) as u32));
        }
        out
    }

    fn reference(edge_list: &[(u32, u32)], min_nodes: usize) -> crate::CsrGraph {
        GraphBuilder::new()
            .with_nodes(min_nodes)
            .extend_edges(edge_list.iter().copied())
            .build()
            .unwrap()
    }

    #[test]
    fn matches_graph_builder_without_spilling() {
        let list = edges(7, 50, 400);
        let mut b = CompactBuilder::new().with_min_nodes(55);
        b.add_edges(list.iter().copied()).unwrap();
        assert_eq!(b.spilled_runs(), 0);
        let compact = b.finish().unwrap();
        compact.validate().unwrap();
        assert_eq!(compact.to_csr().unwrap(), reference(&list, 55));
        assert_eq!(compact, CompactCsr::from_csr(&reference(&list, 55)));
    }

    #[test]
    fn spilled_build_is_byte_identical_to_resident_build() {
        let list = edges(11, 300, 5_000);
        let resident = {
            let mut b = CompactBuilder::new();
            b.add_edges(list.iter().copied()).unwrap();
            b.finish().unwrap()
        };
        // Tiny chunks force many spills; result must not change.
        for cap in [64usize, 257, 1024] {
            let mut b = CompactBuilder::with_chunk_capacity(cap);
            b.add_edges(list.iter().copied()).unwrap();
            assert!(b.spilled_runs() > 1, "cap {cap} must spill");
            let spilled = b.finish().unwrap();
            assert_eq!(
                spilled.as_bytes(),
                resident.as_bytes(),
                "chunk capacity {cap} changed the output"
            );
        }
    }

    #[test]
    fn insertion_order_does_not_matter() {
        let mut list = edges(13, 120, 2_000);
        let a = {
            let mut b = CompactBuilder::with_chunk_capacity(512);
            b.add_edges(list.iter().copied()).unwrap();
            b.finish().unwrap()
        };
        list.reverse();
        let b = {
            let mut bld = CompactBuilder::with_chunk_capacity(700);
            bld.add_edges(list.iter().copied()).unwrap();
            bld.finish().unwrap()
        };
        assert_eq!(a.as_bytes(), b.as_bytes());
    }

    #[test]
    fn empty_and_isolated_nodes() {
        assert!(matches!(
            CompactBuilder::new().finish(),
            Err(GraphError::EmptyGraph)
        ));
        let g = CompactBuilder::new().with_min_nodes(4).finish().unwrap();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 0);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 0);
        }
    }

    #[test]
    fn spill_files_are_cleaned_up() {
        let dir = std::env::temp_dir().join(format!("osn-compact-spilldir-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut b = CompactBuilder::with_chunk_capacity(64).with_temp_dir(&dir);
        b.add_edges(edges(17, 40, 1_000)).unwrap();
        assert!(b.spilled_runs() > 0);
        let _ = b.finish().unwrap();
        assert_eq!(
            std::fs::read_dir(&dir).unwrap().count(),
            0,
            "spill files must be removed after the merge"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
