//! Read-only file mappings for [`CompactCsr`](super::CompactCsr).
//!
//! The on-disk layout is the in-memory layout, so "loading" a snapshot is
//! one `mmap(2)` call: the kernel pages neighbor bytes in lazily as walks
//! touch them, and cold regions of a web-scale graph never cost resident
//! memory. This is the only unsafe code in the workspace; it is confined to
//! this module and wraps exactly two libc calls (`mmap`/`munmap`) behind a
//! bounds-checked, immutable byte-slice view. On non-Unix targets
//! [`map_file`] falls back to reading the file into an owned buffer —
//! functionally identical, just eagerly resident.

use std::fs::File;
use std::io::Read;

use crate::Result;

/// Bytes backing a loaded snapshot: an owned buffer or a kernel mapping.
#[derive(Debug)]
pub enum Bytes {
    /// Heap-resident bytes (built in memory or read from a file).
    Owned(Vec<u8>),
    /// A lazily paged read-only file mapping (Unix only).
    #[cfg(unix)]
    Mapped(Mapping),
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match self {
            Bytes::Owned(v) => v,
            #[cfg(unix)]
            Bytes::Mapped(m) => m.as_slice(),
        }
    }
}

/// Map `file` read-only, paging lazily. Falls back to an owned read of the
/// whole file on non-Unix targets (and for empty files, which `mmap(2)`
/// rejects).
pub fn map_file(file: &mut File) -> Result<Bytes> {
    let len = file.metadata()?.len();
    #[cfg(unix)]
    {
        if len > 0 {
            return Mapping::new(file, len as usize).map(Bytes::Mapped);
        }
    }
    let mut buf = Vec::with_capacity(len as usize);
    file.read_to_end(&mut buf)?;
    Ok(Bytes::Owned(buf))
}

#[cfg(unix)]
pub use unix::Mapping;

#[cfg(unix)]
mod unix {
    // `deny(unsafe_code)` is crate-global; the mmap FFI below is the single
    // sanctioned exception (see the module docs for the safety story).
    #![allow(unsafe_code)]

    use std::fs::File;
    use std::os::fd::AsRawFd;

    use crate::{GraphError, Result};

    mod ffi {
        use std::ffi::{c_int, c_void};

        pub const PROT_READ: c_int = 1;
        pub const MAP_PRIVATE: c_int = 2;

        extern "C" {
            pub fn mmap(
                addr: *mut c_void,
                len: usize,
                prot: c_int,
                flags: c_int,
                fd: c_int,
                offset: i64,
            ) -> *mut c_void;
            pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
        }
    }

    /// A read-only, private mapping of one whole file.
    #[derive(Debug)]
    pub struct Mapping {
        ptr: std::ptr::NonNull<u8>,
        len: usize,
    }

    // SAFETY: the mapping is PROT_READ/MAP_PRIVATE — immutable shared
    // reads, no interior mutability — so views may move across and be
    // shared between threads.
    unsafe impl Send for Mapping {}
    unsafe impl Sync for Mapping {}

    impl Mapping {
        /// Map `len` bytes of `file` from offset 0. `len` must be nonzero.
        pub fn new(file: &File, len: usize) -> Result<Self> {
            debug_assert!(len > 0, "mmap(2) rejects zero-length mappings");
            // SAFETY: fd is a valid open file for the duration of the call;
            // a NULL hint with PROT_READ|MAP_PRIVATE has no preconditions.
            // MAP_FAILED (-1) is checked before the pointer is used.
            let ptr = unsafe {
                ffi::mmap(
                    std::ptr::null_mut(),
                    len,
                    ffi::PROT_READ,
                    ffi::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(GraphError::Io(std::io::Error::last_os_error()));
            }
            let ptr = std::ptr::NonNull::new(ptr.cast::<u8>())
                .ok_or_else(|| GraphError::Format("mmap returned NULL".into()))?;
            Ok(Mapping { ptr, len })
        }

        /// The mapped bytes.
        pub fn as_slice(&self) -> &[u8] {
            // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
            // bytes, unmapped only by Drop (which takes `&mut self`, so no
            // slice borrowed from `&self` can outlive it).
            unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            // SAFETY: `ptr`/`len` are exactly what mmap returned; the
            // mapping is released once, here.
            unsafe {
                ffi::munmap(self.ptr.as_ptr().cast(), self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("osn-graph-mmap-test-{}-{name}", std::process::id()))
    }

    #[test]
    fn maps_file_contents_exactly() {
        let path = temp_path("contents");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();
        let mut file = std::fs::File::open(&path).unwrap();
        let bytes = map_file(&mut file).unwrap();
        assert_eq!(&bytes[..], &payload[..]);
        drop(bytes);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_falls_back_to_owned() {
        let path = temp_path("empty");
        std::fs::File::create(&path).unwrap();
        let mut file = std::fs::File::open(&path).unwrap();
        let bytes = map_file(&mut file).unwrap();
        assert!(bytes.is_empty());
        assert!(matches!(bytes, Bytes::Owned(_)));
        std::fs::remove_file(&path).unwrap();
    }
}
