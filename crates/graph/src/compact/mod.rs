//! Compressed adjacency snapshots: delta-encoded varint CSR with an
//! mmap-friendly on-disk layout.
//!
//! [`CompactCsr`] is the web-scale counterpart of [`CsrGraph`]: node ids are
//! `u32`, and each node's sorted neighbor list is stored as its degree, its
//! first neighbor id, and then strictly positive *gaps* between consecutive
//! ids — all as LEB128 varints ([`varint`]). On community-local graphs most
//! gaps fit one byte, so the packed form is typically 2–4× smaller than the
//! 4-bytes-per-arc plain CSR, small enough that a ~10⁸-edge snapshot is
//! practical where its uncompressed form is not.
//!
//! ## One flat buffer, in memory and on disk
//!
//! A snapshot is a single little-endian byte buffer:
//!
//! ```text
//! ┌────────────────────────── header (48 bytes) ──────────────────────────┐
//! │ magic "OSNCC001" │ node_count u64 │ edge_count u64 │ data_len u64     │
//! │ offset_width u32 (4|8) │ reserved u32 │ fnv1a(data) u64               │
//! ├──────────────────────── offset index ─────────────────────────────────┤
//! │ (node_count + 1) × offset_width bytes; offsets[v] is the byte         │
//! │ position of node v's run inside the data section                      │
//! ├──────────────────────── packed data ──────────────────────────────────┤
//! │ per node: varint(degree) varint(first_id) varint(gap≥1) …             │
//! └───────────────────────────────────────────────────────────────────────┘
//! ```
//!
//! [`CompactCsr::write_to`] dumps the buffer verbatim and
//! [`CompactCsr::open_mmap`] maps it back in `O(1)` — no deserialization
//! pass, the kernel pages neighbor bytes in lazily as walks touch them
//! ([`mmap`]). A gap of zero (a duplicate neighbor) is a format error, as is
//! an id at or above `node_count`; [`CompactCsr::validate`] checks every run.
//!
//! ## Decode cost and the scratch cache
//!
//! | operation | plain [`CsrGraph`] | [`CompactCsr`] |
//! |---|---|---|
//! | `degree(v)` | `O(1)` | `O(1)` (one varint) |
//! | neighbor slice | `O(1)` borrow | `O(deg v)` decode |
//! | via [`DecodeCache`] hit | — | `O(1)` borrow |
//! | memory / arc (heavy-tailed stand-in) | 4 B + offsets | ≈1–2 B + offsets |
//!
//! Walkers re-query the current node every step wave, so the simulated
//! client keeps a small direct-mapped [`DecodeCache`] in front of the
//! decoder: hot nodes decode once and are then served as borrowed slices,
//! which is what keeps walks over `CompactCsr` bit-identical to — and
//! nearly as fast as — the same seed over `CsrGraph`.
//!
//! ```
//! use osn_graph::compact::{CompactCsr, DecodeCache};
//! use osn_graph::{GraphBuilder, NodeId};
//!
//! let plain = GraphBuilder::new()
//!     .add_edge(0, 1)
//!     .add_edge(1, 2)
//!     .add_edge(2, 0)
//!     .build()
//!     .unwrap();
//! let compact = CompactCsr::from_csr(&plain);
//! assert_eq!(compact.degree(NodeId(0)), 2);
//!
//! let mut cache = DecodeCache::new(64);
//! assert_eq!(cache.neighbors(&compact, NodeId(0)), plain.neighbors(NodeId(0)));
//! assert_eq!(compact.to_csr().unwrap(), plain);
//! ```

mod builder;
pub mod mmap;
pub mod varint;

pub use builder::CompactBuilder;

use crate::overlay::{AdjacencyRead, DeltaOverlay};
use crate::{CsrGraph, GraphError, NodeId, Result};

/// Magic bytes opening every serialized snapshot (format version 001).
pub const MAGIC: [u8; 8] = *b"OSNCC001";
/// Byte length of the fixed header.
pub const HEADER_LEN: usize = 48;

/// A compressed, immutable, undirected adjacency snapshot (see module docs).
#[derive(Debug)]
pub struct CompactCsr {
    bytes: mmap::Bytes,
    node_count: usize,
    edge_count: u64,
    offset_width: usize,
    data_at: usize,
}

impl CompactCsr {
    /// Compress a plain CSR graph. Lossless: [`Self::to_csr`] returns an
    /// equal graph, and every walk over the result is bit-identical.
    pub fn from_csr(graph: &CsrGraph) -> Self {
        let mut enc = Encoder::new(graph.node_count());
        for v in graph.nodes() {
            enc.push_run(graph.neighbors(v));
        }
        enc.finish().expect("a valid CsrGraph always encodes")
    }

    /// Decompress into a plain [`CsrGraph`].
    ///
    /// # Errors
    /// Propagates CSR construction errors (practically unreachable for a
    /// validated snapshot).
    pub fn to_csr(&self) -> Result<CsrGraph> {
        let n = self.node_count;
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u64);
        let mut neighbors = Vec::with_capacity(self.total_degree() as usize);
        for v in 0..n as u32 {
            self.decode_into(NodeId(v), &mut neighbors);
            offsets.push(neighbors.len() as u64);
        }
        CsrGraph::from_parts(offsets, neighbors)
    }

    /// Adopt a serialized snapshot buffer, validating the header **and**
    /// every neighbor run (gap-zero and out-of-range ids are rejected).
    ///
    /// # Errors
    /// [`GraphError::Format`] on any malformed byte.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self> {
        let g = Self::parse(mmap::Bytes::Owned(bytes))?;
        g.validate()?;
        Ok(g)
    }

    /// The underlying flat buffer — exactly what [`Self::write_to`] writes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Write the snapshot to `path` (the flat section format above).
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn write_to(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        std::fs::write(path, self.as_bytes())?;
        Ok(())
    }

    /// Read a snapshot eagerly into memory, fully validating it.
    ///
    /// # Errors
    /// I/O failures or [`GraphError::Format`] on malformed bytes.
    pub fn open(path: impl AsRef<std::path::Path>) -> Result<Self> {
        Self::from_bytes(std::fs::read(path)?)
    }

    /// Map a snapshot file read-only in `O(1)`: only the header and the
    /// offset-index bounds are checked up front; neighbor bytes page in
    /// lazily as runs are decoded (each decode is still bounds-checked).
    /// Use [`Self::validate`] to force a full integrity scan.
    ///
    /// # Errors
    /// I/O failures or [`GraphError::Format`] on a malformed header.
    pub fn open_mmap(path: impl AsRef<std::path::Path>) -> Result<Self> {
        let mut file = std::fs::File::open(path)?;
        Self::parse(mmap::map_file(&mut file)?)
    }

    /// Parse and sanity-check the header without touching neighbor bytes.
    fn parse(bytes: mmap::Bytes) -> Result<Self> {
        let err = |msg: String| GraphError::Format(msg);
        if bytes.len() < HEADER_LEN {
            return Err(err(format!(
                "{} bytes is too short for a header",
                bytes.len()
            )));
        }
        if bytes[0..8] != MAGIC {
            return Err(err("bad magic: not a CompactCsr snapshot".into()));
        }
        let u64_at = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
        let node_count_raw = u64_at(8);
        let edge_count = u64_at(16);
        let data_len = u64_at(24);
        let offset_width = u32::from_le_bytes(bytes[32..36].try_into().unwrap()) as usize;
        if offset_width != 4 && offset_width != 8 {
            return Err(err(format!("unsupported offset width {offset_width}")));
        }
        let node_count = usize::try_from(node_count_raw)
            .ok()
            .filter(|&n| n > 0 && n <= (u32::MAX as usize) + 1)
            .ok_or_else(|| err(format!("node count {node_count_raw} out of range")))?;
        let index_len = (node_count + 1)
            .checked_mul(offset_width)
            .ok_or_else(|| err("offset index overflows".into()))?;
        let data_at = HEADER_LEN + index_len;
        let expected = data_at as u64 + data_len;
        if bytes.len() as u64 != expected {
            return Err(err(format!(
                "buffer is {} bytes, layout requires {expected}",
                bytes.len()
            )));
        }
        let g = CompactCsr {
            bytes,
            node_count,
            edge_count,
            offset_width,
            data_at,
        };
        if g.offset(0) != 0 || g.offset(node_count) != data_len {
            return Err(err("offset index does not span the data section".into()));
        }
        Ok(g)
    }

    /// Full integrity scan: offset monotonicity, the data checksum, and
    /// every neighbor run (exact degree, strictly increasing in-range ids —
    /// a gap of zero is a format error), plus the arc/edge-count invariant.
    ///
    /// # Errors
    /// [`GraphError::Format`] describing the first violation.
    pub fn validate(&self) -> Result<()> {
        let err = |msg: String| Err(GraphError::Format(msg));
        let stored = u64::from_le_bytes(self.bytes[40..48].try_into().unwrap());
        let actual = crate::fnv::fnv1a(self.data());
        if stored != actual {
            return err(format!(
                "data checksum mismatch: stored {stored:#x}, computed {actual:#x}"
            ));
        }
        let mut arcs = 0u64;
        for v in 0..self.node_count {
            let (start, end) = (self.offset(v), self.offset(v + 1));
            if start > end {
                return err(format!("offset index not monotone at node {v}"));
            }
            let run = &self.data()[start as usize..end as usize];
            let mut pos = 0;
            let degree = varint::read_u64(run, &mut pos)?;
            let mut prev: Option<u32> = None;
            for _ in 0..degree {
                let id = match prev {
                    None => varint::read_u32(run, &mut pos)?,
                    Some(p) => {
                        let gap = varint::read_u32(run, &mut pos)?;
                        if gap == 0 {
                            return err(format!("zero gap (duplicate neighbor) in node {v}'s run"));
                        }
                        p.checked_add(gap).ok_or_else(|| {
                            GraphError::Format(format!("neighbor id overflow in node {v}'s run"))
                        })?
                    }
                };
                if id as usize >= self.node_count {
                    return err(format!(
                        "neighbor {id} of node {v} out of range for {} nodes",
                        self.node_count
                    ));
                }
                prev = Some(id);
            }
            if pos != run.len() {
                return err(format!(
                    "node {v}'s run has {} trailing byte(s)",
                    run.len() - pos
                ));
            }
            arcs += degree;
        }
        if arcs != self.edge_count * 2 {
            return err(format!(
                "{arcs} arcs stored but header claims {} undirected edges",
                self.edge_count
            ));
        }
        Ok(())
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of undirected edges `|E|`.
    #[inline]
    pub fn edge_count(&self) -> u64 {
        self.edge_count
    }

    /// Sum of degrees, i.e. `2|E|`.
    #[inline]
    pub fn total_degree(&self) -> u64 {
        self.edge_count * 2
    }

    /// Average degree `2|E| / |V|`.
    pub fn average_degree(&self) -> f64 {
        self.total_degree() as f64 / self.node_count as f64
    }

    /// Total size of the flat buffer (header + offsets + packed data) —
    /// the on-disk footprint, and the resident ceiling when owned.
    #[inline]
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Heap-resident bytes: the whole buffer when owned, `0` when the
    /// snapshot is a lazily paged file mapping.
    pub fn heap_bytes(&self) -> usize {
        match self.bytes {
            mmap::Bytes::Owned(_) => self.bytes.len(),
            #[cfg(unix)]
            mmap::Bytes::Mapped(_) => 0,
        }
    }

    /// Whether the snapshot is served from a file mapping.
    pub fn is_mapped(&self) -> bool {
        match self.bytes {
            mmap::Bytes::Owned(_) => false,
            #[cfg(unix)]
            mmap::Bytes::Mapped(_) => true,
        }
    }

    /// Compression ratio versus the plain CSR heap footprint
    /// (`8 B × (n+1)` offsets + `4 B` per arc).
    pub fn compression_ratio(&self) -> f64 {
        let plain = (self.node_count + 1) as f64 * 8.0 + self.total_degree() as f64 * 4.0;
        plain / self.byte_len() as f64
    }

    /// Degree `k_v` of node `v` — `O(1)`: one varint at the run start.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let run = self.run(v);
        let mut pos = 0;
        varint::read_u64(run, &mut pos).expect("validated run") as usize
    }

    /// Lazily decoding iterator over `N(v)` in ascending order.
    ///
    /// # Panics
    /// Panics if `v` is out of range (or, for an unvalidated mapping, on
    /// corrupt bytes mid-iteration).
    #[inline]
    pub fn neighbors_iter(&self, v: NodeId) -> NeighborIter<'_> {
        let run = self.run(v);
        let mut pos = 0;
        let remaining = varint::read_u64(run, &mut pos).expect("validated run");
        NeighborIter {
            run,
            pos,
            remaining,
            prev: None,
        }
    }

    /// Append `N(v)` to `out` (sorted ascending).
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn decode_into(&self, v: NodeId, out: &mut Vec<NodeId>) {
        out.extend(self.neighbors_iter(v));
    }

    /// Whether the arc `u → v` exists. `O(deg u)` decode with early exit
    /// (ids are ascending).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        for w in self.neighbors_iter(u) {
            if w >= v {
                return w == v;
            }
        }
        false
    }

    /// Whether node `v` is a valid id for this graph.
    #[inline]
    pub fn contains_node(&self, v: NodeId) -> bool {
        v.index() < self.node_count
    }

    /// Iterator over all node ids `0..node_count`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count as u32).map(NodeId)
    }

    #[inline]
    fn offset(&self, i: usize) -> u64 {
        let at = HEADER_LEN + i * self.offset_width;
        if self.offset_width == 4 {
            u64::from(u32::from_le_bytes(
                self.bytes[at..at + 4].try_into().unwrap(),
            ))
        } else {
            u64::from_le_bytes(self.bytes[at..at + 8].try_into().unwrap())
        }
    }

    #[inline]
    fn data(&self) -> &[u8] {
        &self.bytes[self.data_at..]
    }

    /// The packed byte run of node `v`.
    #[inline]
    fn run(&self, v: NodeId) -> &[u8] {
        assert!(
            v.index() < self.node_count,
            "node {v} out of range (node count {})",
            self.node_count
        );
        let start = self.offset(v.index()) as usize;
        let end = self.offset(v.index() + 1) as usize;
        &self.data()[start..end]
    }
}

impl PartialEq for CompactCsr {
    fn eq(&self, other: &Self) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}
impl Eq for CompactCsr {}

impl AdjacencyRead for CompactCsr {
    const SYMMETRIC: bool = true;

    fn node_count(&self) -> usize {
        self.node_count
    }

    fn read_degree(&self, v: NodeId) -> usize {
        self.degree(v)
    }

    fn push_neighbors(&self, v: NodeId, out: &mut Vec<NodeId>) {
        self.decode_into(v, out);
    }

    fn contains_arc(&self, u: NodeId, v: NodeId) -> bool {
        self.has_edge(u, v)
    }

    fn rebuilt(&self, overlay: &DeltaOverlay) -> Result<Self> {
        let mut enc = Encoder::new(self.node_count);
        let mut scratch = Vec::new();
        for v in self.nodes() {
            match overlay.patched(v) {
                Some(patch) => enc.push_run(patch),
                None => {
                    scratch.clear();
                    self.decode_into(v, &mut scratch);
                    enc.push_run(&scratch);
                }
            }
        }
        enc.finish()
    }
}

/// Lazily decoding iterator over one node's neighbor run.
#[derive(Clone, Debug)]
pub struct NeighborIter<'a> {
    run: &'a [u8],
    pos: usize,
    remaining: u64,
    prev: Option<u32>,
}

impl Iterator for NeighborIter<'_> {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let delta = varint::read_u32(self.run, &mut self.pos).expect("validated run");
        let id = match self.prev {
            None => delta,
            Some(p) => p
                .checked_add(delta)
                .expect("validated run: gap never overflows"),
        };
        self.prev = Some(id);
        Some(NodeId(id))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for NeighborIter<'_> {}

/// A small direct-mapped cache of decoded neighbor slices.
///
/// Walkers touch the *current* node's list several times per step (degree
/// peeks, neighbor pick, history bookkeeping), and batch waves re-touch a
/// working set of hot nodes; a few hundred slots make those decodes `O(1)`
/// borrows. Slots are direct-mapped by a Fibonacci hash of the node id;
/// a colliding node simply re-decodes into the slot.
#[derive(Clone, Debug)]
pub struct DecodeCache {
    slots: Vec<Slot>,
    mask: usize,
    hits: u64,
    misses: u64,
}

#[derive(Clone, Debug)]
struct Slot {
    /// `u32::MAX` marks an empty slot (ids that large collide harmlessly:
    /// they re-decode on every touch).
    node: u32,
    list: Vec<NodeId>,
}

impl DecodeCache {
    /// A cache with at least `slots` slots (rounded up to a power of two).
    pub fn new(slots: usize) -> Self {
        let n = slots.max(1).next_power_of_two();
        DecodeCache {
            slots: vec![
                Slot {
                    node: u32::MAX,
                    list: Vec::new(),
                };
                n
            ],
            mask: n - 1,
            hits: 0,
            misses: 0,
        }
    }

    #[inline]
    fn slot_of(&self, v: NodeId) -> usize {
        (v.0.wrapping_mul(0x9e37_79b1) as usize) & self.mask
    }

    /// The decoded neighbor slice of `v`, served from the cache when hot.
    ///
    /// # Panics
    /// Panics if `v` is out of range for `graph`.
    pub fn neighbors(&mut self, graph: &CompactCsr, v: NodeId) -> &[NodeId] {
        let i = self.slot_of(v);
        let slot = &mut self.slots[i];
        if slot.node == v.0 {
            self.hits += 1;
        } else {
            self.misses += 1;
            slot.list.clear();
            graph.decode_into(v, &mut slot.list);
            slot.node = v.0;
        }
        &self.slots[i].list
    }

    /// Drop `v`'s cached slice (after a mutation touched it).
    pub fn evict(&mut self, v: NodeId) {
        let i = self.slot_of(v);
        if self.slots[i].node == v.0 {
            self.slots[i].node = u32::MAX;
            self.slots[i].list.clear();
        }
    }

    /// Drop every cached slice.
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            slot.node = u32::MAX;
            slot.list.clear();
        }
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// Streaming run encoder shared by [`CompactCsr::from_csr`], the
/// [`CompactBuilder`] merge phase, and overlay rebuilds.
pub(crate) struct Encoder {
    node_count: usize,
    offsets: Vec<u64>,
    data: Vec<u8>,
    arcs: u64,
    prev_node: usize,
}

impl Encoder {
    pub(crate) fn new(node_count: usize) -> Self {
        let mut offsets = Vec::with_capacity(node_count + 1);
        offsets.push(0);
        Encoder {
            node_count,
            offsets,
            data: Vec::new(),
            arcs: 0,
            prev_node: 0,
        }
    }

    /// Append the run of the next node. `neighbors` must be sorted strictly
    /// ascending (checked in debug builds).
    pub(crate) fn push_run(&mut self, neighbors: &[NodeId]) {
        debug_assert!(self.prev_node < self.node_count, "more runs than nodes");
        debug_assert!(
            neighbors.windows(2).all(|w| w[0] < w[1]),
            "unsorted or duplicate neighbors"
        );
        self.prev_node += 1;
        varint::write_u64(&mut self.data, neighbors.len() as u64);
        let mut prev = None;
        for &NodeId(id) in neighbors {
            let delta = match prev {
                None => id,
                Some(p) => id - p,
            };
            varint::write_u64(&mut self.data, u64::from(delta));
            prev = Some(id);
        }
        self.arcs += neighbors.len() as u64;
        self.offsets.push(self.data.len() as u64);
    }

    /// Assemble the flat buffer.
    pub(crate) fn finish(self) -> Result<CompactCsr> {
        debug_assert_eq!(self.prev_node, self.node_count, "missing runs");
        if self.node_count == 0 {
            return Err(GraphError::EmptyGraph);
        }
        if !self.arcs.is_multiple_of(2) {
            return Err(GraphError::Format(format!(
                "{} arcs: an undirected snapshot stores arcs in pairs",
                self.arcs
            )));
        }
        let data_len = self.data.len() as u64;
        let offset_width: usize = if data_len <= u64::from(u32::MAX) {
            4
        } else {
            8
        };
        let mut bytes =
            Vec::with_capacity(HEADER_LEN + (self.node_count + 1) * offset_width + self.data.len());
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&(self.node_count as u64).to_le_bytes());
        bytes.extend_from_slice(&(self.arcs / 2).to_le_bytes());
        bytes.extend_from_slice(&data_len.to_le_bytes());
        bytes.extend_from_slice(&(offset_width as u32).to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&crate::fnv::fnv1a(&self.data).to_le_bytes());
        for &off in &self.offsets {
            if offset_width == 4 {
                bytes.extend_from_slice(&(off as u32).to_le_bytes());
            } else {
                bytes.extend_from_slice(&off.to_le_bytes());
            }
        }
        bytes.extend_from_slice(&self.data);
        drop(self.data);
        CompactCsr::parse(mmap::Bytes::Owned(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn sample() -> CsrGraph {
        let mut b = GraphBuilder::new().with_nodes(10); // nodes 8..=9 isolated
                                                        // A hub, a chain, and isolated tail nodes to cover degree 0.
        for i in 1..=6u32 {
            b.push_edge(0, i);
        }
        b.push_edge(1, 2);
        b.push_edge(2, 3);
        b.push_edge(5, 6);
        b.push_edge(7, 0);
        b.build().unwrap()
    }

    #[test]
    fn round_trips_through_csr() {
        let plain = sample();
        let compact = CompactCsr::from_csr(&plain);
        assert_eq!(compact.node_count(), plain.node_count());
        assert_eq!(compact.edge_count() as usize, plain.edge_count());
        for v in plain.nodes() {
            assert_eq!(compact.degree(v), plain.degree(v), "degree of {v}");
            let decoded: Vec<NodeId> = compact.neighbors_iter(v).collect();
            assert_eq!(decoded, plain.neighbors(v), "neighbors of {v}");
        }
        assert_eq!(compact.to_csr().unwrap(), plain);
        compact.validate().unwrap();
    }

    #[test]
    fn round_trips_through_bytes_and_disk() {
        let compact = CompactCsr::from_csr(&sample());
        let reparsed = CompactCsr::from_bytes(compact.as_bytes().to_vec()).unwrap();
        assert_eq!(reparsed, compact);

        let path = std::env::temp_dir().join(format!(
            "osn-compact-test-{}-roundtrip.graph",
            std::process::id()
        ));
        compact.write_to(&path).unwrap();
        let opened = CompactCsr::open(&path).unwrap();
        assert_eq!(opened, compact);
        let mapped = CompactCsr::open_mmap(&path).unwrap();
        assert!(mapped.is_mapped() || cfg!(not(unix)));
        assert_eq!(
            mapped.heap_bytes(),
            if mapped.is_mapped() {
                0
            } else {
                mapped.byte_len()
            }
        );
        mapped.validate().unwrap();
        assert_eq!(mapped.as_bytes(), compact.as_bytes());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_adjacency_and_bounds() {
        let compact = CompactCsr::from_csr(&sample());
        assert_eq!(compact.degree(NodeId(8)), 0);
        assert_eq!(compact.neighbors_iter(NodeId(8)).count(), 0);
        assert!(compact.contains_node(NodeId(9)));
        assert!(!compact.contains_node(NodeId(10)));
        assert!(compact.has_edge(NodeId(0), NodeId(3)));
        assert!(!compact.has_edge(NodeId(3), NodeId(4)));
    }

    #[test]
    fn corrupt_bytes_are_rejected() {
        let compact = CompactCsr::from_csr(&sample());
        let good = compact.as_bytes().to_vec();

        // Truncated header.
        assert!(CompactCsr::from_bytes(good[..HEADER_LEN - 1].to_vec()).is_err());
        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xff;
        assert!(CompactCsr::from_bytes(bad).is_err());
        // Flip a data byte: checksum catches it.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert!(CompactCsr::from_bytes(bad).is_err());
        // Truncated buffer.
        assert!(CompactCsr::from_bytes(good[..good.len() - 1].to_vec()).is_err());
    }

    #[test]
    fn zero_gap_is_a_format_error() {
        // Hand-build a 2-node snapshot whose node 0 run encodes the
        // duplicate list [1, 1] as first=1, gap=0.
        let mut data = Vec::new();
        varint::write_u64(&mut data, 2); // degree 2
        varint::write_u64(&mut data, 1); // first neighbor: 1
        varint::write_u64(&mut data, 0); // gap 0 — forbidden
        let split = data.len() as u64;
        varint::write_u64(&mut data, 2); // node 1: degree 2
        varint::write_u64(&mut data, 0);
        varint::write_u64(&mut data, 0);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&2u64.to_le_bytes());
        bytes.extend_from_slice(&2u64.to_le_bytes());
        bytes.extend_from_slice(&(data.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&4u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&crate::fnv::fnv1a(&data).to_le_bytes());
        for off in [0u32, split as u32, data.len() as u32] {
            bytes.extend_from_slice(&off.to_le_bytes());
        }
        bytes.extend_from_slice(&data);
        let e = CompactCsr::from_bytes(bytes).unwrap_err();
        assert!(e.to_string().contains("zero gap"), "{e}");
    }

    #[test]
    fn decode_cache_serves_hits_and_evicts() {
        let plain = sample();
        let compact = CompactCsr::from_csr(&plain);
        let mut cache = DecodeCache::new(4);
        for _ in 0..3 {
            for v in plain.nodes() {
                assert_eq!(cache.neighbors(&compact, v), plain.neighbors(v));
            }
        }
        // Consecutive touches of one node always hit, whatever collides.
        cache.neighbors(&compact, NodeId(0));
        let hits_before = cache.stats().0;
        cache.neighbors(&compact, NodeId(0));
        let (hits, misses) = cache.stats();
        assert_eq!(hits, hits_before + 1, "repeat touch must hit");
        assert!(misses >= plain.node_count() as u64);
        cache.evict(NodeId(0));
        assert_eq!(
            cache.neighbors(&compact, NodeId(0)),
            plain.neighbors(NodeId(0))
        );
        cache.clear();
        assert_eq!(
            cache.neighbors(&compact, NodeId(3)),
            plain.neighbors(NodeId(3))
        );
    }

    #[test]
    fn overlay_reads_and_rebuild_work_over_compact() {
        use crate::{DeltaOverlay, EdgeMutation};
        let plain = sample();
        let compact = CompactCsr::from_csr(&plain);
        let mutations = [
            EdgeMutation::insert(0.5, NodeId(3), NodeId(8)),
            EdgeMutation::delete(1.0, NodeId(0), NodeId(4)),
        ];
        let mut overlay = DeltaOverlay::new();
        for m in mutations {
            assert!(overlay.apply(&compact, m));
        }
        assert_eq!(overlay.degree(&compact, NodeId(8)), 1);
        assert!(overlay.has_edge(&compact, NodeId(8), NodeId(3)));
        assert!(!overlay.has_edge(&compact, NodeId(0), NodeId(4)));

        // Same mutations over the plain base must rebuild the same graph.
        let mut plain_overlay = DeltaOverlay::new();
        for m in mutations {
            assert!(plain_overlay.apply(&plain, m));
        }
        let rebuilt = compact.rebuilt(&overlay).unwrap();
        rebuilt.validate().unwrap();
        let expected = plain.rebuilt(&plain_overlay).unwrap();
        assert_eq!(rebuilt.to_csr().unwrap(), expected);
        assert_eq!(rebuilt, CompactCsr::from_csr(&expected));
    }

    #[test]
    fn compression_wins_on_local_ids() {
        // A long ring: every gap is tiny, so the packed form must be well
        // under the plain footprint.
        let mut b = GraphBuilder::new();
        for i in 0..5_000u32 {
            b.push_edge(i, (i + 1) % 5_000);
        }
        let plain = b.build().unwrap();
        let compact = CompactCsr::from_csr(&plain);
        assert!(
            compact.compression_ratio() > 2.0,
            "ratio {:.2}",
            compact.compression_ratio()
        );
        assert!(compact.byte_len() < plain.heap_bytes() / 2);
    }
}
