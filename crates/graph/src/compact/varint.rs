//! LEB128 variable-length integers — the byte-level codec under
//! [`CompactCsr`](super::CompactCsr) neighbor runs.
//!
//! Little-endian base-128: each byte carries 7 payload bits, the high bit
//! flags continuation. Values up to 127 take one byte, `u32::MAX` takes
//! five, `u64::MAX` ten. Gaps between consecutive sorted neighbor ids are
//! overwhelmingly small on community-local graphs, so most of a neighbor
//! run encodes in one byte per arc.

use crate::{GraphError, Result};

/// Longest encoding of a `u64` (10 × 7 bits ≥ 64 bits).
pub const MAX_LEN: usize = 10;

/// Append the LEB128 encoding of `value` to `out`, returning the number of
/// bytes written (1..=[`MAX_LEN`]).
#[inline]
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) -> usize {
    let mut written = 0;
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        written += 1;
        if value == 0 {
            out.push(byte);
            return written;
        }
        out.push(byte | 0x80);
    }
}

/// Number of bytes [`write_u64`] would emit for `value`.
#[inline]
pub fn encoded_len(value: u64) -> usize {
    // 1 byte per started 7-bit group; value 0 still takes one byte.
    (64 - (value | 1).leading_zeros() as usize).div_ceil(7)
}

/// Decode one LEB128 value at `*pos`, advancing `*pos` past it.
///
/// # Errors
/// [`GraphError::Format`] when the buffer ends mid-value or the encoding
/// exceeds [`MAX_LEN`] bytes / overflows a `u64`.
#[inline]
pub fn read_u64(bytes: &[u8], pos: &mut usize) -> Result<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*pos).ok_or_else(|| {
            GraphError::Format(format!("varint truncated at byte offset {}", *pos))
        })?;
        *pos += 1;
        let payload = u64::from(byte & 0x7f);
        if shift >= 63 && payload > 1 {
            return Err(GraphError::Format(format!(
                "varint overflows u64 at byte offset {}",
                *pos - 1
            )));
        }
        value |= payload << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift >= 64 {
            return Err(GraphError::Format(format!(
                "varint longer than {MAX_LEN} bytes at byte offset {}",
                *pos - 1
            )));
        }
    }
}

/// [`read_u64`] restricted to the `u32` id domain.
///
/// # Errors
/// [`GraphError::Format`] on truncation/overflow or a value above
/// `u32::MAX`.
#[inline]
pub fn read_u32(bytes: &[u8], pos: &mut usize) -> Result<u32> {
    let v = read_u64(bytes, pos)?;
    u32::try_from(v)
        .map_err(|_| GraphError::Format(format!("varint value {v} exceeds the u32 id domain")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(value: u64) -> usize {
        let mut buf = Vec::new();
        let len = write_u64(&mut buf, value);
        assert_eq!(len, buf.len());
        assert_eq!(len, encoded_len(value));
        let mut pos = 0;
        assert_eq!(read_u64(&buf, &mut pos).unwrap(), value);
        assert_eq!(pos, len);
        len
    }

    #[test]
    fn round_trips_across_the_domain() {
        assert_eq!(round_trip(0), 1);
        assert_eq!(round_trip(1), 1);
        assert_eq!(round_trip(127), 1);
        assert_eq!(round_trip(128), 2);
        assert_eq!(round_trip(16_383), 2);
        assert_eq!(round_trip(16_384), 3);
        assert_eq!(round_trip(u64::from(u32::MAX)), 5);
        assert_eq!(round_trip(u64::MAX), 10);
    }

    #[test]
    fn max_u32_survives_the_id_decoder() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::from(u32::MAX));
        let mut pos = 0;
        assert_eq!(read_u32(&buf, &mut pos).unwrap(), u32::MAX);
        // One past the id domain is rejected.
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::from(u32::MAX) + 1);
        let mut pos = 0;
        assert!(read_u32(&buf, &mut pos).is_err());
    }

    #[test]
    fn truncated_and_oversized_encodings_error() {
        // Continuation bit set with no following byte.
        let mut pos = 0;
        assert!(read_u64(&[0x80], &mut pos).is_err());
        // Eleven continuation bytes: longer than any valid u64.
        let mut pos = 0;
        assert!(read_u64(&[0x80; 11], &mut pos).is_err());
        // Ten bytes whose top group overflows 64 bits.
        let mut overflow = vec![0xffu8; 9];
        overflow.push(0x02);
        let mut pos = 0;
        assert!(read_u64(&overflow, &mut pos).is_err());
    }

    #[test]
    fn multiple_values_decode_in_sequence() {
        let mut buf = Vec::new();
        for v in [0u64, 300, 7, u64::from(u32::MAX)] {
            write_u64(&mut buf, v);
        }
        let mut pos = 0;
        for v in [0u64, 300, 7, u64::from(u32::MAX)] {
            assert_eq!(read_u64(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }
}
