//! Immutable compressed-sparse-row (CSR) undirected graph.

use crate::{GraphError, NodeId, Result};

/// An immutable, simple (no self-loops, no parallel edges), undirected graph
/// in compressed-sparse-row form.
///
/// Neighbor lists are stored contiguously and sorted, which gives
///
/// * `O(1)` degree lookup,
/// * `O(1)` access to the neighbor slice (what the simulated OSN interface
///   returns for a query),
/// * `O(log k)` adjacency tests via binary search,
/// * cache-friendly iteration for the analysis passes (triangles, clustering).
///
/// `CsrGraph` is the single in-memory representation every other crate in the
/// workspace builds on. Construct one through [`GraphBuilder`](crate::GraphBuilder),
/// the [`generators`](crate::generators), or [`io`](crate::io).
#[derive(Clone, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v+1]` delimits `neighbors` entries of node `v`.
    offsets: Vec<u64>,
    /// Concatenated, per-node-sorted adjacency lists.
    neighbors: Vec<NodeId>,
    /// Number of undirected edges (half the number of stored arcs).
    edge_count: usize,
}

impl CsrGraph {
    /// Build directly from raw CSR parts.
    ///
    /// `offsets` must have length `node_count + 1`, start at 0, be
    /// non-decreasing, and end at `neighbors.len()`; each adjacency slice must
    /// be sorted, self-loop-free and duplicate-free, and the relation must be
    /// symmetric. This is checked in debug builds only; prefer the builder.
    pub(crate) fn from_parts(offsets: Vec<u64>, neighbors: Vec<NodeId>) -> Result<Self> {
        if offsets.len() < 2 {
            return Err(GraphError::EmptyGraph);
        }
        debug_assert_eq!(offsets[0], 0);
        debug_assert_eq!(*offsets.last().unwrap() as usize, neighbors.len());
        let arc_count = neighbors.len();
        debug_assert!(
            arc_count.is_multiple_of(2),
            "undirected graph must store arcs in pairs"
        );
        let g = CsrGraph {
            offsets,
            neighbors,
            edge_count: arc_count / 2,
        };
        #[cfg(debug_assertions)]
        g.check_invariants();
        Ok(g)
    }

    /// A graph of `n` nodes and no edges.
    ///
    /// The compact-backed simulated client uses this as a placeholder
    /// topology: its node count (and hence budget/queried accounting) is
    /// real while adjacency is served from a [`CompactCsr`](crate::compact::CompactCsr).
    ///
    /// # Errors
    /// [`GraphError::EmptyGraph`] when `n == 0`.
    pub fn edgeless(n: usize) -> Result<Self> {
        Self::from_parts(vec![0u64; n + 1], Vec::new())
    }

    #[cfg(debug_assertions)]
    fn check_invariants(&self) {
        for v in self.nodes() {
            let ns = self.neighbors(v);
            debug_assert!(ns.windows(2).all(|w| w[0] < w[1]), "unsorted or duplicate");
            debug_assert!(!ns.contains(&v), "self loop at {v}");
            for &u in ns {
                debug_assert!(
                    self.neighbors(u).binary_search(&v).is_ok(),
                    "asymmetric edge {v}-{u}"
                );
            }
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `|E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Degree `k_v` of node `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let i = v.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// The sorted neighbor slice `N(v)`.
    ///
    /// This is exactly the answer the restricted OSN interface returns for a
    /// local-neighborhood query on `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let i = v.index();
        &self.neighbors[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Whether the edge `{u, v}` exists.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let (small, probe) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(small).binary_search(&probe).is_ok()
    }

    /// Whether node `v` is a valid id for this graph.
    #[inline]
    pub fn contains_node(&self, v: NodeId) -> bool {
        v.index() < self.node_count()
    }

    /// Iterator over all node ids `0..node_count`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// Iterator over all undirected edges as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Sum of degrees, i.e. `2|E|`. The normalizer of the SRW stationary
    /// distribution `pi(v) = k_v / 2|E|`.
    #[inline]
    pub fn total_degree(&self) -> u64 {
        *self.offsets.last().unwrap()
    }

    /// Average degree `2|E| / |V|`.
    pub fn average_degree(&self) -> f64 {
        self.total_degree() as f64 / self.node_count() as f64
    }

    /// Maximum degree over all nodes (0 for an edgeless graph).
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Minimum degree over all nodes.
    pub fn min_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).min().unwrap_or(0)
    }

    /// The theoretical SRW stationary probability of each node,
    /// `pi(v) = k_v / 2|E|` (Eq. 3 of the paper).
    ///
    /// Returns an empty vector for an edgeless graph (the stationary
    /// distribution is undefined without edges).
    pub fn degree_stationary_distribution(&self) -> Vec<f64> {
        let total = self.total_degree();
        if total == 0 {
            return Vec::new();
        }
        self.nodes()
            .map(|v| self.degree(v) as f64 / total as f64)
            .collect()
    }

    /// Approximate heap footprint in bytes (for capacity planning in the
    /// experiment harness).
    pub fn heap_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u64>()
            + self.neighbors.len() * std::mem::size_of::<NodeId>()
    }
}

impl std::fmt::Debug for CsrGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CsrGraph")
            .field("nodes", &self.node_count())
            .field("edges", &self.edge_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::{GraphBuilder, NodeId};

    fn triangle() -> crate::CsrGraph {
        GraphBuilder::new()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(0, 2)
            .build()
            .unwrap()
    }

    #[test]
    fn counts() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.total_degree(), 6);
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn neighbors_sorted() {
        let g = GraphBuilder::new()
            .add_edge(0, 3)
            .add_edge(0, 1)
            .add_edge(0, 2)
            .build()
            .unwrap();
        assert_eq!(g.neighbors(NodeId(0)), &[NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(g.degree(NodeId(0)), 3);
        assert_eq!(g.degree(NodeId(1)), 1);
    }

    #[test]
    fn has_edge_both_orders() {
        let g = triangle();
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.has_edge(NodeId(1), NodeId(0)));
        let g2 = GraphBuilder::new()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .build()
            .unwrap();
        assert!(!g2.has_edge(NodeId(0), NodeId(2)));
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        for (u, v) in edges {
            assert!(u < v);
        }
    }

    #[test]
    fn stationary_distribution_sums_to_one() {
        let g = GraphBuilder::new()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(2, 3)
            .add_edge(3, 0)
            .add_edge(0, 2)
            .build()
            .unwrap();
        let pi = g.degree_stationary_distribution();
        let sum: f64 = pi.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // Node 0 and 2 have degree 3, nodes 1 and 3 degree 2.
        assert!(pi[0] > pi[1]);
    }

    #[test]
    fn min_max_degree() {
        let g = GraphBuilder::new()
            .add_edge(0, 1)
            .add_edge(0, 2)
            .add_edge(0, 3)
            .build()
            .unwrap();
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.min_degree(), 1);
    }

    #[test]
    fn contains_node_bounds() {
        let g = triangle();
        assert!(g.contains_node(NodeId(2)));
        assert!(!g.contains_node(NodeId(3)));
    }

    #[test]
    fn heap_bytes_positive() {
        assert!(triangle().heap_bytes() > 0);
    }
}
