//! Directed edge lists and the paper's directed→undirected conversion.
//!
//! Real OSNs such as Twitter expose *directed* relations (follower /
//! followee). The paper casts them to undirected graphs; for its large
//! datasets it keeps only edges "that appear in both directions in the
//! original graph" (mutual edges, §6.1), and it also describes the laxer
//! either-direction casting (§2.1). Both conversions are provided here.

use std::collections::HashSet;

use crate::{CsrGraph, GraphBuilder, Result};

/// How to cast a directed relation into an undirected edge set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UndirectedCast {
    /// Keep `{u,v}` only when both `u→v` and `v→u` exist (what the paper's
    /// experiments use — guarantees any undirected walk is executable on the
    /// original directed interface).
    Mutual,
    /// Keep `{u,v}` when either `u→v` or `v→u` exists (§2.1's definition).
    EitherDirection,
}

/// A bag of directed arcs, the raw form a crawl of a directed OSN produces.
#[derive(Clone, Debug, Default)]
pub struct DirectedEdgeList {
    arcs: Vec<(u32, u32)>,
}

impl DirectedEdgeList {
    /// New empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add the arc `u → v`. Self-arcs are kept here and dropped at
    /// conversion (the undirected builder filters them).
    pub fn push(&mut self, u: u32, v: u32) {
        self.arcs.push((u, v));
    }

    /// Number of stored arcs (including duplicates).
    pub fn len(&self) -> usize {
        self.arcs.len()
    }

    /// Whether no arcs are stored.
    pub fn is_empty(&self) -> bool {
        self.arcs.is_empty()
    }

    /// Out-neighbors would require an index; expose raw arcs instead.
    pub fn arcs(&self) -> &[(u32, u32)] {
        &self.arcs
    }

    /// Convert to an undirected [`CsrGraph`] under the given casting rule.
    ///
    /// # Errors
    /// Propagates [`crate::GraphError::EmptyGraph`] when the cast yields no
    /// nodes (e.g. `Mutual` on a list with no reciprocated arcs).
    pub fn to_undirected(&self, cast: UndirectedCast) -> Result<CsrGraph> {
        let mut builder = GraphBuilder::with_capacity(self.arcs.len());
        match cast {
            UndirectedCast::EitherDirection => {
                for &(u, v) in &self.arcs {
                    builder.push_edge(u, v);
                }
            }
            UndirectedCast::Mutual => {
                let set: HashSet<(u32, u32)> = self.arcs.iter().copied().collect();
                for &(u, v) in &self.arcs {
                    // Emit each mutual pair once, from its smaller endpoint.
                    if u < v && set.contains(&(v, u)) {
                        builder.push_edge(u, v);
                    }
                }
            }
        }
        builder.build()
    }

    /// Fraction of arcs that are reciprocated (both directions present).
    /// Useful when calibrating synthetic stand-ins for directed OSNs.
    pub fn reciprocity(&self) -> f64 {
        if self.arcs.is_empty() {
            return 0.0;
        }
        let set: HashSet<(u32, u32)> = self.arcs.iter().copied().collect();
        let reciprocated = set
            .iter()
            .filter(|&&(u, v)| u != v && set.contains(&(v, u)))
            .count();
        reciprocated as f64 / set.len() as f64
    }
}

impl FromIterator<(u32, u32)> for DirectedEdgeList {
    fn from_iter<I: IntoIterator<Item = (u32, u32)>>(iter: I) -> Self {
        DirectedEdgeList {
            arcs: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    fn sample() -> DirectedEdgeList {
        // 0→1, 1→0 (mutual); 1→2 (one way); 2→3, 3→2 (mutual)
        vec![(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]
            .into_iter()
            .collect()
    }

    #[test]
    fn mutual_cast_keeps_reciprocated_only() {
        let g = sample().to_undirected(UndirectedCast::Mutual).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.has_edge(NodeId(2), NodeId(3)));
        assert!(!g.has_edge(NodeId(1), NodeId(2)));
    }

    #[test]
    fn either_cast_keeps_all() {
        let g = sample()
            .to_undirected(UndirectedCast::EitherDirection)
            .unwrap();
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(NodeId(1), NodeId(2)));
    }

    #[test]
    fn reciprocity_measured() {
        let el = sample();
        // 4 of 5 distinct arcs are reciprocated.
        assert!((el.reciprocity() - 0.8).abs() < 1e-12);
        assert_eq!(el.len(), 5);
        assert!(!el.is_empty());
    }

    #[test]
    fn mutual_cast_with_none_reciprocated_errors() {
        let el: DirectedEdgeList = vec![(0, 1), (1, 2)].into_iter().collect();
        assert!(el.to_undirected(UndirectedCast::Mutual).is_err());
    }

    #[test]
    fn duplicate_arcs_collapse() {
        let el: DirectedEdgeList = vec![(0, 1), (0, 1), (1, 0)].into_iter().collect();
        let g = el.to_undirected(UndirectedCast::EitherDirection).unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn reciprocity_empty_is_zero() {
        assert_eq!(DirectedEdgeList::new().reciprocity(), 0.0);
    }
}
