//! Directed edge lists and the paper's directed→undirected conversion.
//!
//! Real OSNs such as Twitter expose *directed* relations (follower /
//! followee). The paper casts them to undirected graphs; for its large
//! datasets it keeps only edges "that appear in both directions in the
//! original graph" (mutual edges, §6.1), and it also describes the laxer
//! either-direction casting (§2.1). Both conversions are provided here.

use std::collections::HashSet;

use crate::overlay::{AdjacencyRead, AdjacencySnapshot, DeltaOverlay};
use crate::{CsrGraph, GraphBuilder, NodeId, Result};

/// How to cast a directed relation into an undirected edge set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UndirectedCast {
    /// Keep `{u,v}` only when both `u→v` and `v→u` exist (what the paper's
    /// experiments use — guarantees any undirected walk is executable on the
    /// original directed interface).
    Mutual,
    /// Keep `{u,v}` when either `u→v` or `v→u` exists (§2.1's definition).
    EitherDirection,
}

/// A bag of directed arcs, the raw form a crawl of a directed OSN produces.
#[derive(Clone, Debug, Default)]
pub struct DirectedEdgeList {
    arcs: Vec<(u32, u32)>,
}

impl DirectedEdgeList {
    /// New empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add the arc `u → v`. Self-arcs are kept here and dropped at
    /// conversion (the undirected builder filters them).
    pub fn push(&mut self, u: u32, v: u32) {
        self.arcs.push((u, v));
    }

    /// Number of stored arcs (including duplicates).
    pub fn len(&self) -> usize {
        self.arcs.len()
    }

    /// Whether no arcs are stored.
    pub fn is_empty(&self) -> bool {
        self.arcs.is_empty()
    }

    /// Out-neighbors would require an index; expose raw arcs instead.
    pub fn arcs(&self) -> &[(u32, u32)] {
        &self.arcs
    }

    /// Convert to an undirected [`CsrGraph`] under the given casting rule.
    ///
    /// # Errors
    /// Propagates [`crate::GraphError::EmptyGraph`] when the cast yields no
    /// nodes (e.g. `Mutual` on a list with no reciprocated arcs).
    pub fn to_undirected(&self, cast: UndirectedCast) -> Result<CsrGraph> {
        let mut builder = GraphBuilder::with_capacity(self.arcs.len());
        match cast {
            UndirectedCast::EitherDirection => {
                for &(u, v) in &self.arcs {
                    builder.push_edge(u, v);
                }
            }
            UndirectedCast::Mutual => {
                let set: HashSet<(u32, u32)> = self.arcs.iter().copied().collect();
                for &(u, v) in &self.arcs {
                    // Emit each mutual pair once, from its smaller endpoint.
                    if u < v && set.contains(&(v, u)) {
                        builder.push_edge(u, v);
                    }
                }
            }
        }
        builder.build()
    }

    /// Compile into a [`DirectedCsr`]: sorted, duplicate-free out-neighbor
    /// lists (self-arcs dropped — the substrate models simple graphs).
    ///
    /// # Errors
    /// [`crate::GraphError::EmptyGraph`] when no nodes would result.
    pub fn to_csr(&self) -> Result<DirectedCsr> {
        DirectedCsr::from_arcs(self.arcs.iter().copied())
    }

    /// Fraction of arcs that are reciprocated (both directions present).
    /// Useful when calibrating synthetic stand-ins for directed OSNs.
    pub fn reciprocity(&self) -> f64 {
        if self.arcs.is_empty() {
            return 0.0;
        }
        let set: HashSet<(u32, u32)> = self.arcs.iter().copied().collect();
        let reciprocated = set
            .iter()
            .filter(|&&(u, v)| u != v && set.contains(&(v, u)))
            .count();
        reciprocated as f64 / set.len() as f64
    }
}

/// An immutable directed graph in compressed-sparse-row form: per-node
/// sorted out-neighbor lists, the asymmetric sibling of [`CsrGraph`].
///
/// Exists so the [`DeltaOverlay`] is not undirected-only: it implements
/// [`AdjacencySnapshot`] with `SYMMETRIC = false`, so a mutation `u → v`
/// patches only `u`'s out-list.
#[derive(Clone, PartialEq, Eq)]
pub struct DirectedCsr {
    /// `offsets[v]..offsets[v+1]` delimits the out-neighbors of node `v`.
    offsets: Vec<u64>,
    /// Concatenated, per-node-sorted out-neighbor lists.
    out: Vec<NodeId>,
}

impl DirectedCsr {
    /// Build from an arc stream: duplicates collapse, self-arcs drop.
    ///
    /// # Errors
    /// [`crate::GraphError::EmptyGraph`] when no nodes would result.
    pub fn from_arcs<I: IntoIterator<Item = (u32, u32)>>(arcs: I) -> Result<Self> {
        let mut arcs: Vec<(u32, u32)> = arcs.into_iter().filter(|&(u, v)| u != v).collect();
        arcs.sort_unstable();
        arcs.dedup();
        let n = arcs
            .iter()
            .map(|&(u, v)| u.max(v) as usize + 1)
            .max()
            .unwrap_or(0);
        if n == 0 {
            return Err(crate::GraphError::EmptyGraph);
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut out = Vec::with_capacity(arcs.len());
        let mut next = 0usize;
        offsets.push(0u64);
        for &(u, v) in &arcs {
            while next < u as usize {
                offsets.push(out.len() as u64);
                next += 1;
            }
            out.push(NodeId(v));
        }
        while next < n {
            offsets.push(out.len() as u64);
            next += 1;
        }
        debug_assert_eq!(offsets.len(), n + 1);
        Ok(DirectedCsr { offsets, out })
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of stored arcs.
    pub fn arc_count(&self) -> usize {
        self.out.len()
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn out_degree(&self, v: NodeId) -> usize {
        let i = v.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// The sorted out-neighbor slice of `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        let i = v.index();
        &self.out[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Whether the arc `u → v` exists.
    pub fn has_arc(&self, u: NodeId, v: NodeId) -> bool {
        self.out_neighbors(u).binary_search(&v).is_ok()
    }
}

impl std::fmt::Debug for DirectedCsr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DirectedCsr")
            .field("nodes", &self.node_count())
            .field("arcs", &self.arc_count())
            .finish()
    }
}

impl AdjacencyRead for DirectedCsr {
    const SYMMETRIC: bool = false;

    fn node_count(&self) -> usize {
        DirectedCsr::node_count(self)
    }

    fn read_degree(&self, v: NodeId) -> usize {
        self.out_degree(v)
    }

    fn push_neighbors(&self, v: NodeId, out: &mut Vec<NodeId>) {
        out.extend_from_slice(self.out_neighbors(v));
    }

    fn contains_arc(&self, u: NodeId, v: NodeId) -> bool {
        self.has_arc(u, v)
    }

    fn rebuilt(&self, overlay: &DeltaOverlay) -> Result<Self> {
        let n = DirectedCsr::node_count(self);
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u64);
        let mut out = Vec::new();
        for v in 0..n as u32 {
            out.extend_from_slice(overlay.neighbors(self, NodeId(v)));
            offsets.push(out.len() as u64);
        }
        Ok(DirectedCsr { offsets, out })
    }
}

impl AdjacencySnapshot for DirectedCsr {
    fn neighbor_slice(&self, v: NodeId) -> &[NodeId] {
        self.out_neighbors(v)
    }
}

impl FromIterator<(u32, u32)> for DirectedEdgeList {
    fn from_iter<I: IntoIterator<Item = (u32, u32)>>(iter: I) -> Self {
        DirectedEdgeList {
            arcs: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    fn sample() -> DirectedEdgeList {
        // 0→1, 1→0 (mutual); 1→2 (one way); 2→3, 3→2 (mutual)
        vec![(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]
            .into_iter()
            .collect()
    }

    #[test]
    fn mutual_cast_keeps_reciprocated_only() {
        let g = sample().to_undirected(UndirectedCast::Mutual).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.has_edge(NodeId(2), NodeId(3)));
        assert!(!g.has_edge(NodeId(1), NodeId(2)));
    }

    #[test]
    fn either_cast_keeps_all() {
        let g = sample()
            .to_undirected(UndirectedCast::EitherDirection)
            .unwrap();
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(NodeId(1), NodeId(2)));
    }

    #[test]
    fn reciprocity_measured() {
        let el = sample();
        // 4 of 5 distinct arcs are reciprocated.
        assert!((el.reciprocity() - 0.8).abs() < 1e-12);
        assert_eq!(el.len(), 5);
        assert!(!el.is_empty());
    }

    #[test]
    fn mutual_cast_with_none_reciprocated_errors() {
        let el: DirectedEdgeList = vec![(0, 1), (1, 2)].into_iter().collect();
        assert!(el.to_undirected(UndirectedCast::Mutual).is_err());
    }

    #[test]
    fn duplicate_arcs_collapse() {
        let el: DirectedEdgeList = vec![(0, 1), (0, 1), (1, 0)].into_iter().collect();
        let g = el.to_undirected(UndirectedCast::EitherDirection).unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn reciprocity_empty_is_zero() {
        assert_eq!(DirectedEdgeList::new().reciprocity(), 0.0);
    }

    #[test]
    fn directed_csr_compiles_sorted_out_lists() {
        // Duplicates collapse, self-arcs drop, node 3 exists only as a
        // target and gets an empty out-list.
        let el: DirectedEdgeList = vec![(1, 0), (1, 2), (1, 0), (2, 2), (0, 3)]
            .into_iter()
            .collect();
        let g = el.to_csr().unwrap();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.arc_count(), 3);
        assert_eq!(g.out_neighbors(NodeId(1)), &[NodeId(0), NodeId(2)]);
        assert_eq!(g.out_degree(NodeId(3)), 0);
        assert!(g.has_arc(NodeId(0), NodeId(3)));
        assert!(!g.has_arc(NodeId(3), NodeId(0)));
        assert!(DirectedEdgeList::new().to_csr().is_err());
    }

    #[test]
    fn overlay_on_directed_patches_source_only() {
        use crate::overlay::{AdjacencyRead, DeltaOverlay, EdgeMutation};
        let g: DirectedCsr = DirectedEdgeList::from_iter(vec![(0, 1), (1, 2), (2, 0)])
            .to_csr()
            .unwrap();
        let mut overlay = DeltaOverlay::new();
        assert!(overlay.apply(&g, EdgeMutation::insert(0.1, NodeId(0), NodeId(2))));
        // Arc 0→2 appears in 0's out-list only; 2's list is untouched.
        assert_eq!(overlay.neighbors(&g, NodeId(0)), &[NodeId(1), NodeId(2)]);
        assert!(std::ptr::eq(
            overlay.neighbors(&g, NodeId(2)),
            g.out_neighbors(NodeId(2))
        ));
        assert!(overlay.apply(&g, EdgeMutation::delete(0.2, NodeId(1), NodeId(2))));
        // The reverse arc was never present, so deleting it is a no-op.
        assert!(!overlay.apply(&g, EdgeMutation::delete(0.3, NodeId(2), NodeId(1))));
        let rebuilt = g.rebuilt(&overlay).unwrap();
        for v in 0..g.node_count() as u32 {
            assert_eq!(
                overlay.neighbors(&g, NodeId(v)),
                rebuilt.out_neighbors(NodeId(v))
            );
        }
        assert_eq!(rebuilt.arc_count(), 3);
    }
}
