//! Error type for graph construction and analysis.

use std::fmt;

use crate::NodeId;

/// Errors produced while building, loading, or analyzing graphs.
#[derive(Debug)]
#[non_exhaustive]
pub enum GraphError {
    /// The builder produced a graph with no nodes.
    EmptyGraph,
    /// An edge referenced a node id outside `0..node_count`.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// The number of nodes in the graph.
        node_count: usize,
    },
    /// An attribute column has the wrong length for the graph.
    AttributeLengthMismatch {
        /// Name of the attribute column.
        name: String,
        /// Length of the supplied column.
        got: usize,
        /// Expected length (= node count).
        expected: usize,
    },
    /// A named attribute column does not exist.
    UnknownAttribute(String),
    /// An attribute column exists but has a different type than requested.
    AttributeTypeMismatch {
        /// Name of the attribute column.
        name: String,
        /// The type actually stored.
        actual: &'static str,
        /// The type requested.
        requested: &'static str,
    },
    /// A generator was asked for an impossible configuration.
    InvalidGeneratorConfig(String),
    /// An edge-list line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable cause.
        message: String,
    },
    /// A serialized compact snapshot is malformed (bad magic, truncated
    /// varint, zero gap, out-of-range id, checksum mismatch, …).
    Format(String),
    /// An underlying I/O failure while reading or writing an edge list.
    Io(std::io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::EmptyGraph => write!(f, "graph has no nodes"),
            GraphError::NodeOutOfRange { node, node_count } => {
                write!(f, "node {node} out of range (node count {node_count})")
            }
            GraphError::AttributeLengthMismatch {
                name,
                got,
                expected,
            } => write!(
                f,
                "attribute `{name}` has {got} values but the graph has {expected} nodes"
            ),
            GraphError::UnknownAttribute(name) => write!(f, "unknown attribute `{name}`"),
            GraphError::AttributeTypeMismatch {
                name,
                actual,
                requested,
            } => write!(
                f,
                "attribute `{name}` is stored as {actual}, requested as {requested}"
            ),
            GraphError::InvalidGeneratorConfig(msg) => {
                write!(f, "invalid generator configuration: {msg}")
            }
            GraphError::Parse { line, message } => {
                write!(f, "edge-list parse error at line {line}: {message}")
            }
            GraphError::Format(msg) => write!(f, "malformed compact snapshot: {msg}"),
            GraphError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::NodeOutOfRange {
            node: NodeId(9),
            node_count: 5,
        };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("5"));

        let e = GraphError::AttributeLengthMismatch {
            name: "age".into(),
            got: 3,
            expected: 10,
        };
        assert!(e.to_string().contains("age"));
    }

    #[test]
    fn io_error_source_is_preserved() {
        use std::error::Error;
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = GraphError::from(io);
        assert!(e.source().is_some());
    }
}
