//! FNV-1a hashing.
//!
//! Three uses across the workspace (the module lives here, at the bottom of
//! the dependency graph, so both `osn-walks` and `osn-client` can share it):
//!
//! * a fast, deterministic `BuildHasher` for the walkers' history hash maps
//!   keyed by directed edges (the paper's `b(u,v)` and `S(u,v)` structures,
//!   which are hit on every step of CNRW/GNRW — `std`'s SipHash is needlessly
//!   slow and randomly seeded, which would break run reproducibility);
//! * the stand-in for the paper's `GNRW_By_MD5` grouping: the paper hashes
//!   user ids with MD5 purely to obtain an attribute-independent pseudorandom
//!   group assignment; FNV-1a provides the same property without a crypto
//!   dependency;
//! * the stripe selector of the lock-striped shared cache in `osn-client`
//!   (`stripe = fnv(node) % N`), where the same determinism guarantees that a
//!   node maps to the same stripe in every run and on every platform.

use std::hash::{BuildHasherDefault, Hasher};

/// The 64-bit FNV-1a offset basis.
const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
/// The 64-bit FNV-1a prime.
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// A 64-bit FNV-1a streaming hasher.
#[derive(Clone, Debug)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64 {
            state: OFFSET_BASIS,
        }
    }
}

impl Hasher for Fnv64 {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(PRIME);
        }
    }
}

/// Deterministic `BuildHasher` for history maps.
pub type FnvBuildHasher = BuildHasherDefault<Fnv64>;

/// A `HashMap` with FNV hashing.
pub type FnvHashMap<K, V> = std::collections::HashMap<K, V, FnvBuildHasher>;

/// A `HashSet` with FNV hashing.
pub type FnvHashSet<T> = std::collections::HashSet<T, FnvBuildHasher>;

/// Hash an arbitrary byte string with FNV-1a.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::default();
    h.write(bytes);
    h.finish()
}

/// Hash a node id — the `GNRW_By_MD5` substitute. Deterministic across runs
/// and platforms, uncorrelated with any node attribute.
pub fn hash_node_id(id: u32) -> u64 {
    fnv1a(&id.to_le_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn node_hash_spreads() {
        // Consecutive ids must land in different buckets most of the time.
        let m = 7u64;
        let mut counts = vec![0usize; m as usize];
        for id in 0..700u32 {
            counts[(hash_node_id(id) % m) as usize] += 1;
        }
        for &c in &counts {
            assert!(c > 50 && c < 150, "bucket count {c} badly skewed");
        }
    }

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(hash_node_id(12345), hash_node_id(12345));
        assert_ne!(hash_node_id(1), hash_node_id(2));
    }

    #[test]
    fn map_type_usable() {
        let mut m: FnvHashMap<(u32, u32), u32> = FnvHashMap::default();
        m.insert((1, 2), 3);
        assert_eq!(m.get(&(1, 2)), Some(&3));
        let mut s: FnvHashSet<u32> = FnvHashSet::default();
        s.insert(9);
        assert!(s.contains(&9));
    }
}
