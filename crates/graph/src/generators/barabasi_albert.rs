//! Barabási–Albert preferential-attachment graphs.

use rand::Rng;

use super::rng;
use crate::{CsrGraph, GraphBuilder, GraphError, Result};

/// Generate a Barabási–Albert preferential-attachment graph.
///
/// Start from a small clique of `m + 1` seed nodes; each subsequent node
/// attaches to `m` distinct existing nodes chosen with probability
/// proportional to their current degree (implemented with the standard
/// repeated-endpoint trick: sample a uniform position in the arc list).
///
/// Produces the heavy-tailed degree distribution (`P(k) ~ k^-3`) typical of
/// OSN follower graphs; used for the Youtube-like sparse stand-in.
/// The result is connected by construction.
///
/// # Errors
/// [`GraphError::InvalidGeneratorConfig`] for `m == 0` or `n <= m`.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Result<CsrGraph> {
    if m == 0 {
        return Err(GraphError::InvalidGeneratorConfig(
            "attachment count m must be positive".to_string(),
        ));
    }
    if n <= m {
        return Err(GraphError::InvalidGeneratorConfig(format!(
            "need n > m (got n={n}, m={m})"
        )));
    }

    let mut r = rng(seed);
    // `targets` holds every edge endpoint twice; sampling a uniform element
    // is degree-proportional sampling.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m);
    let mut builder = GraphBuilder::with_capacity(n * m).with_nodes(n);

    // Seed clique of m+1 nodes guarantees every early pick has m candidates.
    let seed_nodes = m + 1;
    for i in 0..seed_nodes as u32 {
        for j in (i + 1)..seed_nodes as u32 {
            builder.push_edge(i, j);
            endpoints.push(i);
            endpoints.push(j);
        }
    }

    let mut picked: Vec<u32> = Vec::with_capacity(m);
    for v in seed_nodes as u32..n as u32 {
        picked.clear();
        // Rejection-sample m distinct degree-proportional targets.
        while picked.len() < m {
            let t = endpoints[r.gen_range(0..endpoints.len())];
            if !picked.contains(&t) {
                picked.push(t);
            }
        }
        for &t in &picked {
            builder.push_edge(v, t);
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::components::is_connected;
    use crate::NodeId;

    #[test]
    fn node_and_edge_counts() {
        let n = 500;
        let m = 3;
        let g = barabasi_albert(n, m, 5).unwrap();
        assert_eq!(g.node_count(), n);
        let seed_edges = (m + 1) * m / 2;
        assert_eq!(g.edge_count(), seed_edges + (n - m - 1) * m);
        assert!(is_connected(&g));
    }

    #[test]
    fn minimum_degree_is_m() {
        let g = barabasi_albert(300, 2, 6).unwrap();
        assert!(g.nodes().all(|v| g.degree(v) >= 2));
    }

    #[test]
    fn heavy_tail_exists() {
        let g = barabasi_albert(3000, 2, 7).unwrap();
        // A preferential-attachment graph of this size should have a hub with
        // degree far above the mean (mean ~ 4).
        assert!(g.max_degree() > 40, "max degree {}", g.max_degree());
    }

    #[test]
    fn early_nodes_tend_to_be_hubs() {
        let g = barabasi_albert(2000, 3, 8).unwrap();
        let early: usize = (0..10).map(|i| g.degree(NodeId(i))).sum();
        let late: usize = (1990..2000).map(|i| g.degree(NodeId(i))).sum();
        assert!(early > late, "early {early} late {late}");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            barabasi_albert(100, 2, 3).unwrap(),
            barabasi_albert(100, 2, 3).unwrap()
        );
    }

    #[test]
    fn invalid_configs() {
        assert!(barabasi_albert(10, 0, 0).is_err());
        assert!(barabasi_albert(3, 3, 0).is_err());
    }
}
