//! Barbell graphs (two cliques joined by a single bridge edge).

use crate::{CsrGraph, GraphBuilder, GraphError, Result};

/// Generate a barbell graph: a clique of `left` nodes and a clique of `right`
/// nodes joined by one bridge edge.
///
/// Node layout: `0..left` is the left clique, `left..left+right` the right
/// clique; the bridge connects node `left - 1` to node `left`.
///
/// This is the paper's Theorem 3 topology and the Figure 11 workload: the
/// single bridge gives the graph tiny conductance, so a memoryless walk gets
/// stuck inside one bell. The paper's Table 1 "Barbell graph" row (100 nodes,
/// 2451 edges) is `barbell(50, 50)`.
///
/// # Errors
/// [`GraphError::InvalidGeneratorConfig`] if either side has fewer than 2
/// nodes (a bell must be a clique with at least one internal edge).
pub fn barbell(left: usize, right: usize) -> Result<CsrGraph> {
    if left < 2 || right < 2 {
        return Err(GraphError::InvalidGeneratorConfig(format!(
            "barbell sides must each have >= 2 nodes (got {left}, {right})"
        )));
    }
    let edge_estimate = left * (left - 1) / 2 + right * (right - 1) / 2 + 1;
    let mut builder = GraphBuilder::with_capacity(edge_estimate);
    clique(&mut builder, 0, left);
    clique(&mut builder, left as u32, right);
    builder.push_edge(left as u32 - 1, left as u32);
    builder.build()
}

/// Add a complete graph on `size` nodes starting at id `base`.
pub(crate) fn clique(builder: &mut GraphBuilder, base: u32, size: usize) {
    for i in 0..size as u32 {
        for j in (i + 1)..size as u32 {
            builder.push_edge(base + i, base + j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::components::is_connected;
    use crate::NodeId;

    #[test]
    fn table1_barbell_row() {
        // Paper Table 1: Barbell graph, 100 nodes, 2451 edges.
        let g = barbell(50, 50).unwrap();
        assert_eq!(g.node_count(), 100);
        assert_eq!(g.edge_count(), 2451);
    }

    #[test]
    fn bridge_endpoints_have_extra_degree() {
        let g = barbell(5, 7).unwrap();
        // interior left node: degree 4; bridge left endpoint: 5
        assert_eq!(g.degree(NodeId(0)), 4);
        assert_eq!(g.degree(NodeId(4)), 5);
        assert_eq!(g.degree(NodeId(5)), 7);
        assert_eq!(g.degree(NodeId(6)), 6);
        assert!(g.has_edge(NodeId(4), NodeId(5)));
    }

    #[test]
    fn asymmetric_sides() {
        let g = barbell(2, 10).unwrap();
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 1 + 45 + 1);
        assert!(is_connected(&g));
    }

    #[test]
    fn too_small_rejected() {
        assert!(barbell(1, 5).is_err());
        assert!(barbell(5, 0).is_err());
    }

    #[test]
    fn connected_for_sweep_sizes() {
        // Figure 11 sweeps sizes 20..56.
        for n in [20usize, 30, 40, 56] {
            let g = barbell(n / 2, n - n / 2).unwrap();
            assert_eq!(g.node_count(), n);
            assert!(is_connected(&g));
        }
    }
}
