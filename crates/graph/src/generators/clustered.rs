//! Clustered-cliques graphs (several cliques chained by bridge edges).

use super::barbell::clique;
use crate::{CsrGraph, GraphBuilder, GraphError, Result};

/// Configuration for [`clustered_cliques`].
#[derive(Clone, Debug)]
pub struct ClusteredCliquesConfig {
    /// Size of each clique, in node-id order.
    pub clique_sizes: Vec<usize>,
    /// Number of bridge edges between each pair of consecutive cliques
    /// (1 reproduces the paper's graph; more raises conductance).
    pub bridges_between: usize,
}

impl Default for ClusteredCliquesConfig {
    /// The paper's Figure 10 graph: three complete graphs of sizes 10, 30
    /// and 50, chained with single bridges (Table 1 "Clustering graph":
    /// 90 nodes, 1707 edges).
    fn default() -> Self {
        ClusteredCliquesConfig {
            clique_sizes: vec![10, 30, 50],
            bridges_between: 1,
        }
    }
}

/// Generate a chain of cliques joined by bridge edges.
///
/// Cliques occupy consecutive id ranges. Between clique `i` and clique
/// `i + 1`, `bridges_between` edges are added, pairing the `j`-th highest
/// node of clique `i` with the `j`-th lowest node of clique `i + 1`.
///
/// # Errors
/// [`GraphError::InvalidGeneratorConfig`] if fewer than one clique is given,
/// any clique has fewer than 2 nodes, `bridges_between` is zero with more
/// than one clique, or `bridges_between` exceeds a neighboring clique size.
pub fn clustered_cliques(config: &ClusteredCliquesConfig) -> Result<CsrGraph> {
    let sizes = &config.clique_sizes;
    if sizes.is_empty() {
        return Err(GraphError::InvalidGeneratorConfig(
            "need at least one clique".to_string(),
        ));
    }
    if let Some(&bad) = sizes.iter().find(|&&s| s < 2) {
        return Err(GraphError::InvalidGeneratorConfig(format!(
            "clique of size {bad} is degenerate; need >= 2"
        )));
    }
    if sizes.len() > 1 && config.bridges_between == 0 {
        return Err(GraphError::InvalidGeneratorConfig(
            "bridges_between = 0 would disconnect the graph".to_string(),
        ));
    }
    for w in sizes.windows(2) {
        if config.bridges_between > w[0].min(w[1]) {
            return Err(GraphError::InvalidGeneratorConfig(format!(
                "bridges_between {} exceeds neighboring clique size {}",
                config.bridges_between,
                w[0].min(w[1])
            )));
        }
    }

    let edge_estimate: usize =
        sizes.iter().map(|s| s * (s - 1) / 2).sum::<usize>() + sizes.len() * config.bridges_between;
    let mut builder = GraphBuilder::with_capacity(edge_estimate);

    let mut base = 0u32;
    let mut bases = Vec::with_capacity(sizes.len());
    for &s in sizes {
        bases.push(base);
        clique(&mut builder, base, s);
        base += s as u32;
    }
    for (i, w) in sizes.windows(2).enumerate() {
        let left_end = bases[i] + w[0] as u32; // one past left clique
        let right_start = bases[i + 1];
        for j in 0..config.bridges_between as u32 {
            builder.push_edge(left_end - 1 - j, right_start + j);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::components::is_connected;

    #[test]
    fn table1_clustering_graph_row() {
        // Paper Table 1: Clustering graph, 90 nodes, 1707 edges.
        let g = clustered_cliques(&ClusteredCliquesConfig::default()).unwrap();
        assert_eq!(g.node_count(), 90);
        let expected = 10 * 9 / 2 + 30 * 29 / 2 + 50 * 49 / 2 + 2;
        assert_eq!(expected, 1707);
        assert_eq!(g.edge_count(), 1707);
        assert!(is_connected(&g));
    }

    #[test]
    fn multiple_bridges() {
        let g = clustered_cliques(&ClusteredCliquesConfig {
            clique_sizes: vec![4, 4],
            bridges_between: 3,
        })
        .unwrap();
        assert_eq!(g.edge_count(), 6 + 6 + 3);
        assert!(is_connected(&g));
    }

    #[test]
    fn single_clique_ok() {
        let g = clustered_cliques(&ClusteredCliquesConfig {
            clique_sizes: vec![6],
            bridges_between: 0,
        })
        .unwrap();
        assert_eq!(g.edge_count(), 15);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(clustered_cliques(&ClusteredCliquesConfig {
            clique_sizes: vec![],
            bridges_between: 1,
        })
        .is_err());
        assert!(clustered_cliques(&ClusteredCliquesConfig {
            clique_sizes: vec![3, 1],
            bridges_between: 1,
        })
        .is_err());
        assert!(clustered_cliques(&ClusteredCliquesConfig {
            clique_sizes: vec![3, 3],
            bridges_between: 0,
        })
        .is_err());
        assert!(clustered_cliques(&ClusteredCliquesConfig {
            clique_sizes: vec![3, 3],
            bridges_between: 4,
        })
        .is_err());
    }

    #[test]
    fn high_clustering_coefficient() {
        // Table 1 lists 0.99 average clustering for these graphs.
        let g = clustered_cliques(&ClusteredCliquesConfig::default()).unwrap();
        let cc = crate::analysis::average_clustering_coefficient(&g);
        assert!(cc > 0.95, "clustering coefficient {cc} too low");
    }
}
