//! Powerlaw configuration-model graphs.

use rand::seq::SliceRandom;
use rand::Rng;

use super::{connect_components, rng};
use crate::{CsrGraph, GraphBuilder, GraphError, Result};

/// Generate a connected simple graph whose degree sequence is drawn from a
/// truncated powerlaw `P(k) ∝ k^-gamma` on `k in [k_min, k_max]`, wired with
/// the configuration model (uniform stub matching, self-loops and multi-edges
/// discarded).
///
/// This is the workhorse stand-in for crawled OSN snapshots: it matches a
/// target average degree and tail shape without imposing clustering (combine
/// with triadic closure in `homophily_communities` when clustering matters).
///
/// # Errors
/// [`GraphError::InvalidGeneratorConfig`] for `n < 2`, `gamma <= 1`,
/// `k_min == 0`, or `k_min > k_max`.
pub fn powerlaw_configuration(
    n: usize,
    gamma: f64,
    k_min: usize,
    k_max: usize,
    seed: u64,
) -> Result<CsrGraph> {
    if n < 2 {
        return Err(GraphError::InvalidGeneratorConfig(format!(
            "need n >= 2 (got {n})"
        )));
    }
    if gamma <= 1.0 {
        return Err(GraphError::InvalidGeneratorConfig(format!(
            "powerlaw exponent must exceed 1 (got {gamma})"
        )));
    }
    if k_min == 0 || k_min > k_max {
        return Err(GraphError::InvalidGeneratorConfig(format!(
            "need 1 <= k_min <= k_max (got {k_min}..{k_max})"
        )));
    }
    let k_max = k_max.min(n - 1);

    let mut r = rng(seed);

    // Sample degrees by inverse-CDF over the discrete truncated powerlaw.
    let weights: Vec<f64> = (k_min..=k_max).map(|k| (k as f64).powf(-gamma)).collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    let sample_degree = |r: &mut rand_chacha::ChaCha12Rng| -> usize {
        let u: f64 = r.gen();
        let pos = cdf.partition_point(|&c| c < u);
        k_min + pos.min(cdf.len() - 1)
    };

    let mut degrees: Vec<usize> = (0..n).map(|_| sample_degree(&mut r)).collect();
    // Stub count must be even; bump one node if necessary.
    if degrees.iter().sum::<usize>() % 2 == 1 {
        degrees[0] += 1;
    }

    // Configuration model: shuffle the stub multiset and pair consecutively.
    let mut stubs: Vec<u32> = Vec::with_capacity(degrees.iter().sum());
    for (v, &d) in degrees.iter().enumerate() {
        stubs.extend(std::iter::repeat_n(v as u32, d));
    }
    stubs.shuffle(&mut r);

    let mut builder = GraphBuilder::with_capacity(stubs.len() / 2).with_nodes(n);
    for pair in stubs.chunks_exact(2) {
        // Self-loops / duplicates removed by the builder; "erased"
        // configuration model.
        builder.push_edge(pair[0], pair[1]);
    }
    connect_components(&builder.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::components::is_connected;

    #[test]
    fn respects_degree_bounds_roughly() {
        let g = powerlaw_configuration(2000, 2.5, 2, 100, 1).unwrap();
        assert_eq!(g.node_count(), 2000);
        assert!(is_connected(&g));
        // Erasure removes some edges, so min degree can dip below k_min, but
        // the bulk should sit in range and the tail must exist.
        assert!(g.max_degree() <= 101);
        assert!(g.max_degree() > 20, "max {}", g.max_degree());
        assert!(g.average_degree() > 2.0 && g.average_degree() < 10.0);
    }

    #[test]
    fn gamma_steeper_means_sparser() {
        let shallow = powerlaw_configuration(3000, 2.0, 2, 200, 2).unwrap();
        let steep = powerlaw_configuration(3000, 3.5, 2, 200, 2).unwrap();
        assert!(shallow.average_degree() > steep.average_degree());
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            powerlaw_configuration(500, 2.2, 2, 50, 9).unwrap(),
            powerlaw_configuration(500, 2.2, 2, 50, 9).unwrap()
        );
    }

    #[test]
    fn invalid_configs() {
        assert!(powerlaw_configuration(1, 2.5, 1, 10, 0).is_err());
        assert!(powerlaw_configuration(10, 1.0, 1, 10, 0).is_err());
        assert!(powerlaw_configuration(10, 2.5, 0, 10, 0).is_err());
        assert!(powerlaw_configuration(10, 2.5, 5, 4, 0).is_err());
    }

    #[test]
    fn k_max_clamped_to_n_minus_1() {
        let g = powerlaw_configuration(20, 2.5, 2, 10_000, 3).unwrap();
        assert!(g.max_degree() < 20);
    }
}
