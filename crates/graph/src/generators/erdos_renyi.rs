//! Erdős–Rényi `G(n, p)` random graphs.

use rand::Rng;

use super::{connect_components, rng};
use crate::{CsrGraph, GraphBuilder, GraphError, Result};

/// Generate a connected Erdős–Rényi `G(n, p)` graph.
///
/// Each of the `n (n-1) / 2` candidate edges is included independently with
/// probability `p` using geometric skipping (`O(n + |E|)` expected time, so
/// large sparse graphs are cheap). If the sample is disconnected, components
/// are stitched with a minimal number of extra edges — at `p` above the
/// connectivity threshold this virtually never triggers, and below it the
/// stitching adds `o(|E|)` edges, which keeps degree statistics intact for
/// our calibration purposes.
///
/// # Errors
/// [`GraphError::InvalidGeneratorConfig`] for `n < 2` or `p` outside `[0, 1]`.
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Result<CsrGraph> {
    if n < 2 {
        return Err(GraphError::InvalidGeneratorConfig(format!(
            "Erdos-Renyi needs n >= 2 (got {n})"
        )));
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidGeneratorConfig(format!(
            "edge probability must lie in [0, 1] (got {p})"
        )));
    }
    let mut r = rng(seed);
    let expected_edges = (p * (n as f64) * (n as f64 - 1.0) / 2.0) as usize;
    let mut builder = GraphBuilder::with_capacity(expected_edges + n).with_nodes(n);

    if p > 0.0 {
        // Geometric skipping over the lexicographic edge enumeration
        // (Batagelj–Brandes): skip ~Geom(p) candidates between inclusions.
        let total = n as u64 * (n as u64 - 1) / 2;
        let log_1mp = (1.0 - p).ln();
        let mut idx: u64 = 0;
        loop {
            if p >= 1.0 {
                if idx >= total {
                    break;
                }
                let (u, v) = unrank(idx, n as u64);
                builder.push_edge(u as u32, v as u32);
                idx += 1;
                continue;
            }
            let u01: f64 = r.gen_range(f64::MIN_POSITIVE..1.0);
            let skip = (u01.ln() / log_1mp).floor() as u64;
            idx = idx.saturating_add(skip);
            if idx >= total {
                break;
            }
            let (u, v) = unrank(idx, n as u64);
            builder.push_edge(u as u32, v as u32);
            idx += 1;
        }
    }

    connect_components(&builder.build()?)
}

/// Map a lexicographic rank to the `(u, v)` pair with `u < v` in an `n`-node
/// complete graph, where rank 0 is `(0,1)`, rank 1 is `(0,2)`, …
fn unrank(rank: u64, n: u64) -> (u64, u64) {
    // Row u starts at offset u*n - u*(u+1)/2 - u ... simpler: walk rows.
    // For performance use the closed form via quadratic inversion.
    // Edges from node u: n - 1 - u of them.
    // Cumulative edges before row u: u*n - u*(u+1)/2.
    // Solve largest u with cum(u) <= rank.
    let fr = rank as f64;
    let fnn = n as f64;
    // cum(u) = u*n - u*(u+1)/2 = -(u^2)/2 + u*(n - 1/2)
    // Invert approximately then fix up.
    let mut u = ((2.0 * fnn - 1.0 - ((2.0 * fnn - 1.0).powi(2) - 8.0 * fr).sqrt()) / 2.0) as u64;
    u = u.min(n - 2);
    let cum = |u: u64| u * n - u * (u + 1) / 2;
    while u > 0 && cum(u) > rank {
        u -= 1;
    }
    while cum(u + 1) <= rank {
        u += 1;
    }
    let v = u + 1 + (rank - cum(u));
    (u, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::components::is_connected;

    #[test]
    fn unrank_enumerates_all_pairs() {
        let n = 7u64;
        let total = n * (n - 1) / 2;
        let mut seen = std::collections::HashSet::new();
        for r in 0..total {
            let (u, v) = unrank(r, n);
            assert!(u < v && v < n, "bad pair ({u},{v}) at rank {r}");
            assert!(seen.insert((u, v)), "duplicate pair at rank {r}");
        }
        assert_eq!(seen.len(), total as usize);
    }

    #[test]
    fn p_one_gives_complete_graph() {
        let g = erdos_renyi(6, 1.0, 1).unwrap();
        assert_eq!(g.edge_count(), 15);
    }

    #[test]
    fn p_zero_gives_stitched_tree() {
        // All edges come from component stitching: n-1 edges, connected.
        let g = erdos_renyi(8, 0.0, 2).unwrap();
        assert_eq!(g.node_count(), 8);
        assert_eq!(g.edge_count(), 7);
        assert!(is_connected(&g));
    }

    #[test]
    fn edge_count_near_expectation() {
        let n = 2000;
        let p = 0.01;
        let g = erdos_renyi(n, p, 42).unwrap();
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.edge_count() as f64;
        // within 5 standard deviations
        let sd = (expected * (1.0 - p)).sqrt();
        assert!(
            (got - expected).abs() < 5.0 * sd + 10.0,
            "got {got}, expected {expected}"
        );
        assert!(is_connected(&g));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = erdos_renyi(100, 0.05, 7).unwrap();
        let b = erdos_renyi(100, 0.05, 7).unwrap();
        let c = erdos_renyi(100, 0.05, 8).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn invalid_configs() {
        assert!(erdos_renyi(1, 0.5, 0).is_err());
        assert!(erdos_renyi(10, -0.1, 0).is_err());
        assert!(erdos_renyi(10, 1.1, 0).is_err());
    }
}
