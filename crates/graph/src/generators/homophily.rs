//! Attribute-homophilous community graphs.
//!
//! The GNRW experiments rest on an empirical property of OSNs the paper calls
//! out explicitly (§4.1): *"users with similar attribute values are more
//! likely to be connected with each other"*. This generator produces graphs
//! with exactly that structure — planted communities, heavy-tailed degrees,
//! tunable homophily and tunable clustering (via triadic closure) — and
//! returns the community assignment so `osn-datasets` can derive correlated
//! node attributes from it.

use rand::Rng;

use super::{connect_components, rng};
use crate::{CsrGraph, GraphBuilder, GraphError, Result};

/// Configuration for [`homophily_communities`].
#[derive(Clone, Debug)]
pub struct HomophilyConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of planted communities.
    pub communities: usize,
    /// Target mean degree (the generator matches this to within sampling
    /// noise before triadic closure).
    pub mean_degree: f64,
    /// Powerlaw exponent of the degree propensity (2–3 typical for OSNs;
    /// larger = lighter tail).
    pub degree_exponent: f64,
    /// Probability that an edge stays inside its source's community
    /// (0 = no homophily, 1 = disconnected communities before stitching).
    pub homophily: f64,
    /// Expected number of triadic-closure passes per node (raises the
    /// clustering coefficient; 0 disables).
    pub closure_rounds: f64,
    /// Degree–community correlation: communities cycle through
    /// [`DEGREE_LEVELS`] activity levels and a node's degree propensity is
    /// multiplied by `community_degree_ratio ^ level`. 1.0 disables.
    ///
    /// Real OSNs exhibit exactly this (celebrity clusters, lurker clusters);
    /// it is also what makes degree aggregates hard to sample — a walk
    /// trapped inside an activity-atypical community reports a biased
    /// estimate until it escapes, which is the regime where history-aware
    /// walks pay off.
    pub community_degree_ratio: f64,
}

/// Number of distinct community activity levels (communities cycle through
/// them, so the spread does not explode with the community count).
pub const DEGREE_LEVELS: u32 = 6;

impl Default for HomophilyConfig {
    fn default() -> Self {
        HomophilyConfig {
            nodes: 1000,
            communities: 10,
            mean_degree: 10.0,
            degree_exponent: 2.5,
            homophily: 0.8,
            closure_rounds: 0.5,
            community_degree_ratio: 1.0,
        }
    }
}

impl HomophilyConfig {
    fn validate(&self) -> Result<()> {
        if self.nodes < 4 {
            return Err(GraphError::InvalidGeneratorConfig(format!(
                "need >= 4 nodes (got {})",
                self.nodes
            )));
        }
        if self.communities == 0 || self.communities > self.nodes {
            return Err(GraphError::InvalidGeneratorConfig(format!(
                "communities must lie in 1..=nodes (got {})",
                self.communities
            )));
        }
        if self.mean_degree < 1.0 || self.mean_degree >= self.nodes as f64 {
            return Err(GraphError::InvalidGeneratorConfig(format!(
                "mean_degree must lie in [1, nodes) (got {})",
                self.mean_degree
            )));
        }
        if self.degree_exponent <= 1.0 {
            return Err(GraphError::InvalidGeneratorConfig(
                "degree_exponent must exceed 1".to_string(),
            ));
        }
        if !(0.0..=1.0).contains(&self.homophily) {
            return Err(GraphError::InvalidGeneratorConfig(
                "homophily must lie in [0, 1]".to_string(),
            ));
        }
        if self.closure_rounds < 0.0 {
            return Err(GraphError::InvalidGeneratorConfig(
                "closure_rounds must be >= 0".to_string(),
            ));
        }
        if self.community_degree_ratio <= 0.0 {
            return Err(GraphError::InvalidGeneratorConfig(
                "community_degree_ratio must be positive".to_string(),
            ));
        }
        Ok(())
    }
}

/// Generate an attribute-homophilous community graph.
///
/// Returns the connected graph and the community label of every node.
///
/// Construction:
/// 1. nodes are dealt round-robin into `communities` groups;
/// 2. each node draws a degree propensity from a truncated powerlaw and emits
///    that many half-edges; each half-edge lands inside the node's own
///    community with probability `homophily`, else on a uniform node;
/// 3. `closure_rounds` triadic-closure passes connect random neighbor pairs,
///    raising clustering without disturbing community structure;
/// 4. leftover disconnected components are stitched minimally.
///
/// # Errors
/// [`GraphError::InvalidGeneratorConfig`] on any out-of-range field.
pub fn homophily_communities(config: &HomophilyConfig, seed: u64) -> Result<(CsrGraph, Vec<u32>)> {
    config.validate()?;
    let n = config.nodes;
    let c = config.communities;
    let mut r = rng(seed);

    // Round-robin assignment keeps community sizes within 1 of each other
    // and is trivially reproducible.
    let community: Vec<u32> = (0..n).map(|i| (i % c) as u32).collect();
    let mut members: Vec<Vec<u32>> = vec![Vec::with_capacity(n / c + 1); c];
    for (i, &cm) in community.iter().enumerate() {
        members[cm as usize].push(i as u32);
    }

    // Degree propensities: powerlaw draws rescaled to hit the target mean.
    let gamma = config.degree_exponent;
    let raw: Vec<f64> = (0..n)
        .map(|i| {
            // Inverse-CDF sample of a continuous Pareto on [1, inf), capped,
            // scaled by the community's activity level.
            let u: f64 = r.gen_range(f64::MIN_POSITIVE..1.0);
            let x = u.powf(-1.0 / (gamma - 1.0));
            let level = community[i] % DEGREE_LEVELS;
            x.min(n as f64 / 4.0) * config.community_degree_ratio.powi(level as i32)
        })
        .collect();
    let raw_mean: f64 = raw.iter().sum::<f64>() / n as f64;
    let scale = config.mean_degree / raw_mean;

    let mut builder =
        GraphBuilder::with_capacity((n as f64 * config.mean_degree) as usize).with_nodes(n);
    for v in 0..n as u32 {
        // Half the target degree in emitted half-edges (the other endpoint's
        // emissions supply the rest on average).
        let stubs = ((raw[v as usize] * scale / 2.0).round() as usize).max(1);
        let home = &members[community[v as usize] as usize];
        for _ in 0..stubs {
            let target = if r.gen::<f64>() < config.homophily && home.len() > 1 {
                // Uniform member of the same community, excluding v itself.
                loop {
                    let t = home[r.gen_range(0..home.len())];
                    if t != v {
                        break t;
                    }
                }
            } else {
                loop {
                    let t = r.gen_range(0..n as u32);
                    if t != v {
                        break t;
                    }
                }
            };
            builder.push_edge(v, target);
        }
    }
    let base = builder.build()?;

    // Triadic closure: raises clustering toward OSN-like values.
    let closures = (config.closure_rounds * n as f64) as usize;
    let mut builder = GraphBuilder::with_capacity(base.edge_count() + closures).with_nodes(n);
    for (u, v) in base.edges() {
        builder.push_edge(u.0, v.0);
    }
    for _ in 0..closures {
        let v = r.gen_range(0..n as u32);
        let ns = base.neighbors(crate::NodeId(v));
        if ns.len() < 2 {
            continue;
        }
        let a = ns[r.gen_range(0..ns.len())];
        let b = ns[r.gen_range(0..ns.len())];
        if a != b {
            builder.push_edge(a.0, b.0);
        }
    }

    let graph = connect_components(&builder.build()?)?;
    Ok((graph, community))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{average_clustering_coefficient, components::is_connected};
    use crate::NodeId;

    fn small() -> HomophilyConfig {
        HomophilyConfig {
            nodes: 600,
            communities: 6,
            mean_degree: 12.0,
            degree_exponent: 2.5,
            homophily: 0.85,
            closure_rounds: 1.0,
            community_degree_ratio: 1.0,
        }
    }

    #[test]
    fn basic_shape() {
        let (g, labels) = homophily_communities(&small(), 1).unwrap();
        assert_eq!(g.node_count(), 600);
        assert_eq!(labels.len(), 600);
        assert!(is_connected(&g));
        let mean = g.average_degree();
        assert!(mean > 8.0 && mean < 25.0, "mean degree {mean}");
    }

    #[test]
    fn homophily_concentrates_edges_within_communities() {
        let (g, labels) = homophily_communities(&small(), 2).unwrap();
        let within = g
            .edges()
            .filter(|&(u, v)| labels[u.index()] == labels[v.index()])
            .count();
        let frac = within as f64 / g.edge_count() as f64;
        // 6 communities: random wiring would give ~1/6 within. Homophily 0.85
        // plus closure should push this way up.
        assert!(frac > 0.5, "within-community fraction {frac}");
    }

    #[test]
    fn no_homophily_spreads_edges() {
        let mut cfg = small();
        cfg.homophily = 0.0;
        cfg.closure_rounds = 0.0;
        let (g, labels) = homophily_communities(&cfg, 3).unwrap();
        let within = g
            .edges()
            .filter(|&(u, v)| labels[u.index()] == labels[v.index()])
            .count();
        let frac = within as f64 / g.edge_count() as f64;
        assert!(frac < 0.3, "within-community fraction {frac}");
    }

    #[test]
    fn closure_raises_clustering() {
        let mut no_closure = small();
        no_closure.closure_rounds = 0.0;
        let mut heavy_closure = small();
        heavy_closure.closure_rounds = 4.0;
        let (g0, _) = homophily_communities(&no_closure, 4).unwrap();
        let (g1, _) = homophily_communities(&heavy_closure, 4).unwrap();
        let cc0 = average_clustering_coefficient(&g0);
        let cc1 = average_clustering_coefficient(&g1);
        assert!(cc1 > cc0, "cc0={cc0} cc1={cc1}");
    }

    #[test]
    fn deterministic() {
        let a = homophily_communities(&small(), 5).unwrap();
        let b = homophily_communities(&small(), 5).unwrap();
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn community_labels_round_robin() {
        let (_, labels) = homophily_communities(&small(), 6).unwrap();
        assert_eq!(labels[0], 0);
        assert_eq!(labels[1], 1);
        assert_eq!(labels[6], 0);
    }

    #[test]
    fn invalid_configs() {
        let mut c = small();
        c.nodes = 2;
        assert!(homophily_communities(&c, 0).is_err());
        let mut c = small();
        c.communities = 0;
        assert!(homophily_communities(&c, 0).is_err());
        let mut c = small();
        c.homophily = 1.5;
        assert!(homophily_communities(&c, 0).is_err());
        let mut c = small();
        c.degree_exponent = 0.9;
        assert!(homophily_communities(&c, 0).is_err());
        let mut c = small();
        c.mean_degree = 0.1;
        assert!(homophily_communities(&c, 0).is_err());
        let mut c = small();
        c.closure_rounds = -1.0;
        assert!(homophily_communities(&c, 0).is_err());
    }

    #[test]
    fn min_degree_positive() {
        let (g, _) = homophily_communities(&small(), 7).unwrap();
        assert!(g.nodes().all(|v| g.degree(v) >= 1));
        let _ = g.neighbors(NodeId(0));
    }
}
