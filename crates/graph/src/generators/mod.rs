//! Synthetic graph generators.
//!
//! Two families live here:
//!
//! * the paper's **ill-formed synthetic graphs** (§6.1): [`barbell`] and
//!   [`clustered_cliques`] — small-conductance graphs that make burn-in
//!   expensive and show the largest CNRW/GNRW gains (Figures 10 and 11,
//!   Theorem 3);
//! * **stand-in models for real OSN snapshots**: [`erdos_renyi`],
//!   [`watts_strogatz`], [`barabasi_albert`], [`powerlaw_configuration`] and
//!   [`homophily_communities`], which `osn-datasets` calibrates to the
//!   node/edge/clustering statistics of Table 1 — plus the streamed
//!   [`web_graph`] family, which scales the heavy-tailed community shape to
//!   ~10⁸ edges by generating each edge as a pure function of
//!   `(seed, index)` and building straight into a
//!   [`CompactCsr`](crate::compact::CompactCsr).
//!
//! Every generator takes an explicit seed and is fully deterministic; all of
//! them guarantee a *connected* simple graph (random walks need one) unless
//! documented otherwise.

mod barabasi_albert;
mod barbell;
mod clustered;
mod config_model;
mod erdos_renyi;
mod homophily;
mod streamed;
mod watts_strogatz;

pub use barabasi_albert::barabasi_albert;
pub use barbell::barbell;
pub use clustered::{clustered_cliques, ClusteredCliquesConfig};
pub use config_model::powerlaw_configuration;
pub use erdos_renyi::erdos_renyi;
pub use homophily::{homophily_communities, HomophilyConfig, DEGREE_LEVELS};
pub use streamed::{
    web_graph, web_graph_compact, web_graph_compact_with, web_graph_edges, WebEdgeStream,
    WebGraphConfig,
};
pub use watts_strogatz::watts_strogatz;

use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

use crate::analysis::components::connected_components;
use crate::{CsrGraph, GraphBuilder, Result};

/// Deterministic RNG used by every generator in this module.
pub(crate) fn rng(seed: u64) -> ChaCha12Rng {
    ChaCha12Rng::seed_from_u64(seed)
}

/// Stitch a possibly-disconnected graph into a connected one by adding one
/// edge between consecutive components (each component's minimum-id node is
/// linked to the previous component's). Adds `c - 1` edges for `c` components;
/// preserves simplicity.
pub(crate) fn connect_components(graph: &CsrGraph) -> Result<CsrGraph> {
    let labels = connected_components(graph);
    let component_count = labels.iter().copied().max().map_or(0, |m| m + 1);
    if component_count <= 1 {
        return Ok(graph.clone());
    }
    // First (minimum-id) node of each component.
    let mut representative = vec![u32::MAX; component_count];
    for (i, &c) in labels.iter().enumerate() {
        if representative[c] == u32::MAX {
            representative[c] = i as u32;
        }
    }
    let mut builder = GraphBuilder::with_capacity(graph.edge_count() + component_count);
    for (u, v) in graph.edges() {
        builder.push_edge(u.0, v.0);
    }
    for w in representative.windows(2) {
        builder.push_edge(w[0], w[1]);
    }
    builder.with_nodes(graph.node_count()).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::components::is_connected;

    #[test]
    fn connect_components_stitches() {
        // Two disjoint edges.
        let g = GraphBuilder::new()
            .add_edge(0, 1)
            .add_edge(2, 3)
            .build()
            .unwrap();
        assert!(!is_connected(&g));
        let c = connect_components(&g).unwrap();
        assert!(is_connected(&c));
        assert_eq!(c.edge_count(), 3);
    }

    #[test]
    fn connect_components_noop_when_connected() {
        let g = GraphBuilder::new()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .build()
            .unwrap();
        let c = connect_components(&g).unwrap();
        assert_eq!(g, c);
    }
}
