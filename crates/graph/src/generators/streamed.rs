//! Streamed heavy-tailed OSN stand-in at web scale.
//!
//! The Table-1 stand-ins ([`powerlaw_configuration`](super::powerlaw_configuration),
//! [`homophily_communities`](super::homophily_communities)) materialize a
//! full edge list before building — fine at ≤10⁶ edges, hopeless at 10⁸.
//! [`web_graph_edges`] instead yields each edge as a pure function of
//! `(seed, edge index)` via `splitmix64`, so a 100M-edge stand-in streams
//! straight into [`CompactBuilder`](crate::compact::CompactBuilder) in O(1)
//! generator memory.
//!
//! The model is Chung–Lu-flavored with three OSN-shaped properties:
//!
//! * **Heavy-tailed degrees.** Endpoint ranks within a community are drawn
//!   as `rank = L · u²` for uniform `u` (integer fixed-point square — no
//!   floating-point `powf`, so the stream is bit-stable across platforms).
//!   Pick mass at rank `x` falls as `x^(-1/2)`, giving a `γ ≈ 3`
//!   Barabási–Albert-like degree tail with hubs at low in-community ranks.
//! * **Community locality.** Nodes are laid out in `communities` contiguous
//!   id blocks and a `homophily` fraction of edges stays intra-block, so
//!   sorted adjacency gaps are small — exactly what the compact snapshot's
//!   gap varints reward (measured ≥2× compression on the `Scale::Full`
//!   tier).
//! * **Connectivity.** A deterministic path backbone `(i, i+1)` underlies
//!   the random edges; every node is reachable, as random walks require.
//!
//! Duplicate edges and self-loops produced by the random pairing collapse
//! at build time, so realized edge counts land slightly under the target —
//! call sites that care report realized counts, not targets.

use crate::compact::{CompactBuilder, CompactCsr};
use crate::mix::splitmix64_stream;
use crate::{CsrGraph, GraphBuilder, GraphError, Result};

/// Parameters of the streamed web-scale stand-in.
#[derive(Clone, Copy, Debug)]
pub struct WebGraphConfig {
    /// Number of nodes (≥ 2).
    pub nodes: usize,
    /// Target average degree; realized degree lands slightly lower after
    /// duplicate/self-loop collapse.
    pub avg_degree: f64,
    /// Number of contiguous community blocks (≥ 1, ≤ `nodes`).
    pub communities: usize,
    /// Fraction of random edges kept inside their source's community
    /// (clamped to `[0, 1]`). Higher ⇒ smaller adjacency gaps ⇒ better
    /// compression, like real OSN id locality.
    pub homophily: f64,
    /// Seed of the deterministic edge stream.
    pub seed: u64,
}

impl WebGraphConfig {
    /// A gplus-shaped default: 64 communities, 90% intra-community edges.
    pub fn new(nodes: usize, avg_degree: f64, seed: u64) -> Self {
        WebGraphConfig {
            nodes,
            avg_degree,
            communities: 64,
            homophily: 0.9,
            seed,
        }
    }

    /// Override the community count.
    #[must_use]
    pub fn with_communities(mut self, communities: usize) -> Self {
        self.communities = communities;
        self
    }

    /// Override the intra-community edge fraction.
    #[must_use]
    pub fn with_homophily(mut self, homophily: f64) -> Self {
        self.homophily = homophily;
        self
    }

    /// Total edges the stream yields (backbone + random; pre-collapse).
    pub fn target_edges(&self) -> u64 {
        let m = (self.nodes as f64 * self.avg_degree / 2.0) as u64;
        let backbone = self.nodes.saturating_sub(1) as u64;
        backbone + m.saturating_sub(backbone)
    }

    fn validate(&self) -> Result<()> {
        if self.nodes < 2 {
            return Err(GraphError::InvalidGeneratorConfig(format!(
                "web graph needs at least 2 nodes, got {}",
                self.nodes
            )));
        }
        if self.communities == 0 || self.communities > self.nodes {
            return Err(GraphError::InvalidGeneratorConfig(format!(
                "community count {} out of range for {} nodes",
                self.communities, self.nodes
            )));
        }
        if !self.avg_degree.is_finite() || self.avg_degree < 0.0 {
            return Err(GraphError::InvalidGeneratorConfig(format!(
                "average degree {} must be finite and non-negative",
                self.avg_degree
            )));
        }
        Ok(())
    }
}

/// The deterministic edge stream (see module docs). O(1) memory; edge `i`
/// depends only on `(config.seed, i)`.
///
/// # Errors
/// [`GraphError::InvalidGeneratorConfig`] on a degenerate configuration.
pub fn web_graph_edges(config: &WebGraphConfig) -> Result<WebEdgeStream> {
    config.validate()?;
    let block = (config.nodes / config.communities).max(1);
    Ok(WebEdgeStream {
        nodes: config.nodes as u64,
        communities: config.communities as u64,
        block: block as u64,
        // Saturating f64→u64 cast: homophily ≥ 1.0 means "always intra".
        intra_threshold: (config.homophily.clamp(0.0, 1.0) * (u64::MAX as f64)) as u64,
        seed: config.seed,
        next: 0,
        total: config.target_edges(),
    })
}

/// Iterator yielding the streamed edge list; see [`web_graph_edges`].
#[derive(Clone, Debug)]
pub struct WebEdgeStream {
    nodes: u64,
    communities: u64,
    block: u64,
    intra_threshold: u64,
    seed: u64,
    next: u64,
    total: u64,
}

impl WebEdgeStream {
    /// Heavy-tailed rank in `0..len`: `rank = len · u²` for fixed-point
    /// uniform `u`, all in integer arithmetic.
    #[inline]
    fn zipfish(r: u64, len: u64) -> u64 {
        let u2 = ((u128::from(r) * u128::from(r)) >> 64) as u64;
        ((u128::from(len) * u128::from(u2)) >> 64) as u64
    }

    /// A node inside community `k` with heavy-tailed in-block rank.
    #[inline]
    fn pick_in_community(&self, k: u64, r: u64) -> u64 {
        let start = k * self.block;
        // The last community absorbs the remainder block.
        let len = if k == self.communities - 1 {
            self.nodes - start
        } else {
            self.block
        };
        start + Self::zipfish(r, len)
    }
}

impl Iterator for WebEdgeStream {
    type Item = (u32, u32);

    fn next(&mut self) -> Option<(u32, u32)> {
        if self.next >= self.total {
            return None;
        }
        let i = self.next;
        self.next += 1;
        // Path backbone first: guarantees connectivity.
        if i < self.nodes - 1 {
            return Some((i as u32, (i + 1) as u32));
        }
        // Three independent draws per random edge.
        let r0 = splitmix64_stream(self.seed, i * 3);
        let r1 = splitmix64_stream(self.seed, i * 3 + 1);
        let r2 = splitmix64_stream(self.seed, i * 3 + 2);
        let src_community = r0 % self.communities;
        let src = self.pick_in_community(src_community, r1);
        let dst_community = if r0 >> 32 <= self.intra_threshold >> 32 {
            src_community
        } else {
            // Any *other* community (uniform), keeping some global mixing.
            let other = (r0 >> 16) % (self.communities.max(2) - 1);
            (src_community + 1 + other) % self.communities
        };
        let dst = self.pick_in_community(dst_community, r2);
        Some((src as u32, dst as u32))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.total - self.next) as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for WebEdgeStream {}

/// Materialize the stand-in as a plain [`CsrGraph`] — for the tiers that
/// still fit uncompressed.
///
/// # Errors
/// [`GraphError::InvalidGeneratorConfig`] on a degenerate configuration.
pub fn web_graph(config: &WebGraphConfig) -> Result<CsrGraph> {
    let stream = web_graph_edges(config)?;
    GraphBuilder::with_capacity(stream.len())
        .with_nodes(config.nodes)
        .extend_edges(stream)
        .build()
}

/// Stream the stand-in directly into a [`CompactCsr`] in bounded memory —
/// the only way to build the ~10⁸-edge tiers.
///
/// # Errors
/// [`GraphError::InvalidGeneratorConfig`] on a degenerate configuration;
/// I/O errors from builder spills.
pub fn web_graph_compact(config: &WebGraphConfig) -> Result<CompactCsr> {
    web_graph_compact_with(config, CompactBuilder::new())
}

/// [`web_graph_compact`] with a caller-tuned builder (chunk capacity, spill
/// directory) — the soak harness uses this to pin memory bounds.
///
/// # Errors
/// Same as [`web_graph_compact`].
pub fn web_graph_compact_with(
    config: &WebGraphConfig,
    mut builder: CompactBuilder,
) -> Result<CompactCsr> {
    let stream = web_graph_edges(config)?;
    builder = builder.with_min_nodes(config.nodes);
    builder.add_edges(stream)?;
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::components::is_connected;
    use crate::compact::CompactCsr;

    fn small() -> WebGraphConfig {
        WebGraphConfig::new(2_000, 16.0, 42).with_communities(16)
    }

    #[test]
    fn stream_is_deterministic_and_sized() {
        let a: Vec<_> = web_graph_edges(&small()).unwrap().collect();
        let b: Vec<_> = web_graph_edges(&small()).unwrap().collect();
        assert_eq!(a, b);
        assert_eq!(a.len() as u64, small().target_edges());
        // A different seed yields a different stream.
        let c: Vec<_> = web_graph_edges(&WebGraphConfig { seed: 7, ..small() })
            .unwrap()
            .collect();
        assert_ne!(a, c);
    }

    #[test]
    fn plain_and_compact_builds_agree() {
        let cfg = small();
        let plain = web_graph(&cfg).unwrap();
        let compact =
            web_graph_compact_with(&cfg, CompactBuilder::with_chunk_capacity(4096)).unwrap();
        assert_eq!(compact, CompactCsr::from_csr(&plain));
        assert_eq!(compact.to_csr().unwrap(), plain);
    }

    #[test]
    fn shape_is_osn_like() {
        let g = web_graph(&small()).unwrap();
        assert!(is_connected(&g));
        assert_eq!(g.node_count(), 2_000);
        // Dedup shrinks the target but not catastrophically.
        let realized = g.average_degree();
        assert!(realized > 8.0 && realized <= 16.0, "avg degree {realized}");
        // Heavy tail: the max degree dwarfs the average.
        assert!(
            g.max_degree() as f64 > 4.0 * realized,
            "max {} vs avg {realized}",
            g.max_degree()
        );
        // Locality pays: the compact form compresses ≥ 2×.
        let c = CompactCsr::from_csr(&g);
        assert!(c.compression_ratio() >= 2.0, "{}", c.compression_ratio());
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        assert!(web_graph(&WebGraphConfig::new(1, 4.0, 0)).is_err());
        assert!(web_graph(&WebGraphConfig::new(10, -1.0, 0)).is_err());
        assert!(web_graph(&WebGraphConfig::new(10, f64::NAN, 0)).is_err());
        assert!(web_graph(&WebGraphConfig::new(10, 4.0, 0).with_communities(0)).is_err());
        assert!(web_graph(&WebGraphConfig::new(10, 4.0, 0).with_communities(11)).is_err());
    }

    #[test]
    fn homophily_extremes() {
        let intra = web_graph(&small().with_homophily(1.0)).unwrap();
        let mixed = web_graph(&small().with_homophily(0.0)).unwrap();
        // Full homophily compresses better than full mixing.
        let ri = CompactCsr::from_csr(&intra).compression_ratio();
        let rm = CompactCsr::from_csr(&mixed).compression_ratio();
        assert!(ri > rm, "intra {ri} vs mixed {rm}");
    }
}
