//! Watts–Strogatz small-world graphs.

use rand::Rng;

use super::{connect_components, rng};
use crate::{CsrGraph, GraphBuilder, GraphError, Result};

/// Generate a connected Watts–Strogatz small-world graph.
///
/// Start from a ring lattice of `n` nodes where each node connects to its
/// `k / 2` nearest neighbors on each side (`k` must be even), then rewire the
/// far endpoint of each lattice edge with probability `beta` to a uniformly
/// random non-duplicate target.
///
/// Watts–Strogatz gives *tunable clustering* — exactly the knob we need to
/// calibrate stand-ins for the paper's high-clustering snapshots (Facebook
/// 0.47, Google Plus 0.51) versus low-clustering ones (Youtube 0.08).
///
/// # Errors
/// [`GraphError::InvalidGeneratorConfig`] for `n < 4`, odd `k`, `k >= n`, or
/// `beta` outside `[0, 1]`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Result<CsrGraph> {
    if n < 4 {
        return Err(GraphError::InvalidGeneratorConfig(format!(
            "Watts-Strogatz needs n >= 4 (got {n})"
        )));
    }
    if k == 0 || !k.is_multiple_of(2) {
        return Err(GraphError::InvalidGeneratorConfig(format!(
            "lattice degree k must be positive and even (got {k})"
        )));
    }
    if k >= n {
        return Err(GraphError::InvalidGeneratorConfig(format!(
            "lattice degree k ({k}) must be < n ({n})"
        )));
    }
    if !(0.0..=1.0).contains(&beta) {
        return Err(GraphError::InvalidGeneratorConfig(format!(
            "rewiring probability must lie in [0, 1] (got {beta})"
        )));
    }

    let mut r = rng(seed);
    // Adjacency as a set for duplicate checks during rewiring.
    let mut edges: std::collections::BTreeSet<(u32, u32)> = std::collections::BTreeSet::new();
    let norm = |u: u32, v: u32| if u < v { (u, v) } else { (v, u) };
    for i in 0..n as u32 {
        for d in 1..=(k / 2) as u32 {
            let j = (i + d) % n as u32;
            edges.insert(norm(i, j));
        }
    }

    // Rewire pass: for each original lattice edge (i, i+d), with prob beta
    // replace it by (i, random target).
    for i in 0..n as u32 {
        for d in 1..=(k / 2) as u32 {
            let j = (i + d) % n as u32;
            if r.gen::<f64>() >= beta {
                continue;
            }
            if !edges.contains(&norm(i, j)) {
                continue; // already rewired away by the symmetric pass
            }
            // Try a few times to find a fresh target; skip on failure (dense
            // neighborhoods near k ~ n).
            for _ in 0..32 {
                let t = r.gen_range(0..n as u32);
                if t != i && !edges.contains(&norm(i, t)) {
                    edges.remove(&norm(i, j));
                    edges.insert(norm(i, t));
                    break;
                }
            }
        }
    }

    let mut builder = GraphBuilder::with_capacity(edges.len()).with_nodes(n);
    for (u, v) in edges {
        builder.push_edge(u, v);
    }
    connect_components(&builder.build()?)
}

/// Local clustering of a ring lattice (beta = 0) for reference:
/// `3 (k - 2) / (4 (k - 1))`.
#[cfg(test)]
pub(crate) fn lattice_clustering(k: usize) -> f64 {
    if k < 2 {
        return 0.0;
    }
    3.0 * (k as f64 - 2.0) / (4.0 * (k as f64 - 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{average_clustering_coefficient, components::is_connected};

    #[test]
    fn beta_zero_is_ring_lattice() {
        let g = watts_strogatz(20, 4, 0.0, 1).unwrap();
        assert_eq!(g.node_count(), 20);
        assert_eq!(g.edge_count(), 40);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
        let cc = average_clustering_coefficient(&g);
        assert!((cc - lattice_clustering(4)).abs() < 1e-9, "cc = {cc}");
    }

    #[test]
    fn rewiring_lowers_clustering() {
        let low = watts_strogatz(500, 10, 0.0, 3).unwrap();
        let high = watts_strogatz(500, 10, 1.0, 3).unwrap();
        let cc0 = average_clustering_coefficient(&low);
        let cc1 = average_clustering_coefficient(&high);
        assert!(cc1 < cc0 / 2.0, "cc0={cc0} cc1={cc1}");
    }

    #[test]
    fn connected_and_deterministic() {
        let a = watts_strogatz(200, 6, 0.2, 9).unwrap();
        let b = watts_strogatz(200, 6, 0.2, 9).unwrap();
        assert_eq!(a, b);
        assert!(is_connected(&a));
    }

    #[test]
    fn invalid_configs() {
        assert!(watts_strogatz(3, 2, 0.1, 0).is_err());
        assert!(watts_strogatz(10, 3, 0.1, 0).is_err());
        assert!(watts_strogatz(10, 10, 0.1, 0).is_err());
        assert!(watts_strogatz(10, 4, 1.5, 0).is_err());
    }

    #[test]
    fn edge_count_preserved_by_rewiring() {
        // Rewiring replaces edges one-for-one (modulo rare skip).
        let g = watts_strogatz(300, 8, 0.5, 11).unwrap();
        let expected = 300 * 4;
        let got = g.edge_count();
        assert!(
            got >= expected - 10 && got <= expected + 300,
            "edge count {got} vs lattice {expected}"
        );
    }
}
