//! Node identifier newtype.

use std::fmt;

/// Identifier of a node (user) in a graph.
///
/// Nodes are always densely numbered `0..node_count`. The newtype prevents
/// accidental mixing of node ids with other integer quantities (degrees,
/// counts, budgets) that circulate through the sampling pipeline.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize` index, for slice/column access.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a `usize` index.
    ///
    /// # Panics
    /// Panics if `i` does not fit in `u32` (graphs are capped at ~4.3B nodes,
    /// far above anything this crate targets).
    #[inline]
    pub fn from_index(i: usize) -> Self {
        NodeId(u32::try_from(i).expect("node index exceeds u32 range"))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u32 {
    fn from(v: NodeId) -> Self {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let n = NodeId::from_index(42);
        assert_eq!(n.index(), 42);
        assert_eq!(n, NodeId(42));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", NodeId(7)), "7");
        assert_eq!(format!("{:?}", NodeId(7)), "n7");
    }

    #[test]
    fn ordering_follows_numeric() {
        assert!(NodeId(3) < NodeId(10));
    }

    #[test]
    #[should_panic(expected = "exceeds u32")]
    fn from_index_overflow_panics() {
        let _ = NodeId::from_index(u32::MAX as usize + 1);
    }
}
