//! Plain-text edge-list reading and writing.
//!
//! The paper's public benchmark datasets ship as SNAP-style edge lists
//! (`1684.edges` and friends): one `u v` pair per line, `#`-prefixed comment
//! lines, arbitrary whitespace. This module parses that dialect from any
//! `BufRead` and can write it back, so users with the real snapshots can load
//! them directly in place of our synthetic stand-ins.

use std::io::{BufRead, Write};

use crate::{CsrGraph, GraphBuilder, GraphError, Result};

/// Parse a SNAP-style undirected edge list.
///
/// * Lines starting with `#` or `%` are comments.
/// * Blank lines are skipped.
/// * Each data line holds two whitespace-separated node ids.
/// * Duplicate edges and self-loops are tolerated (normalized away).
///
/// Node ids are used as-is; callers with sparse id spaces should compact ids
/// first (see [`read_edge_list_compacted`]).
///
/// # Errors
/// [`GraphError::Parse`] with the 1-based line number on malformed lines,
/// [`GraphError::Io`] on read failures.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<CsrGraph> {
    let mut builder = GraphBuilder::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let (u, v) = parse_pair(trimmed, idx + 1)?;
        builder.push_edge(u, v);
    }
    builder.build()
}

/// Parse an edge list whose ids may be sparse (e.g. raw user ids), compacting
/// them to dense `0..n`. Returns the graph and the original id of each dense
/// node, so samples can be mapped back.
pub fn read_edge_list_compacted<R: BufRead>(reader: R) -> Result<(CsrGraph, Vec<u64>)> {
    use std::collections::HashMap;
    let mut remap: HashMap<u64, u32> = HashMap::new();
    let mut original: Vec<u64> = Vec::new();
    let mut builder = GraphBuilder::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let (u, v) = parse_pair_u64(trimmed, idx + 1)?;
        let mut dense = |raw: u64| -> u32 {
            *remap.entry(raw).or_insert_with(|| {
                let id = original.len() as u32;
                original.push(raw);
                id
            })
        };
        let du = dense(u);
        let dv = dense(v);
        builder.push_edge(du, dv);
    }
    Ok((builder.build()?, original))
}

fn parse_pair(line: &str, line_no: usize) -> Result<(u32, u32)> {
    let (u, v) = parse_pair_u64(line, line_no)?;
    let narrow = |x: u64| -> Result<u32> {
        u32::try_from(x).map_err(|_| GraphError::Parse {
            line: line_no,
            message: format!("node id {x} exceeds u32; use read_edge_list_compacted"),
        })
    };
    Ok((narrow(u)?, narrow(v)?))
}

fn parse_pair_u64(line: &str, line_no: usize) -> Result<(u64, u64)> {
    let mut parts = line.split_whitespace();
    let mut next = |what: &str| -> Result<u64> {
        parts
            .next()
            .ok_or_else(|| GraphError::Parse {
                line: line_no,
                message: format!("missing {what} node id"),
            })?
            .parse::<u64>()
            .map_err(|e| GraphError::Parse {
                line: line_no,
                message: format!("bad {what} node id: {e}"),
            })
    };
    let u = next("source")?;
    let v = next("target")?;
    Ok((u, v))
}

/// Write a graph as a SNAP-style edge list (one `u v` line per undirected
/// edge, smaller endpoint first), preceded by a summary comment.
///
/// # Errors
/// [`GraphError::Io`] on write failures.
pub fn write_edge_list<W: Write>(graph: &CsrGraph, mut writer: W) -> Result<()> {
    writeln!(
        writer,
        "# undirected edge list: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    )?;
    for (u, v) in graph.edges() {
        writeln!(writer, "{u} {v}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    #[test]
    fn parse_simple_list() {
        let text = "# comment\n0 1\n1 2\n\n% also comment\n2 0\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn parse_reports_line_numbers() {
        let text = "0 1\nnot numbers\n";
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn parse_missing_target() {
        let err = read_edge_list("42\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("target"));
    }

    #[test]
    fn roundtrip_write_read() {
        let g = crate::GraphBuilder::new()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(0, 2)
            .build()
            .unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn compacted_remaps_sparse_ids() {
        let text = "1000000000000 5\n5 70\n";
        let (g, original) = read_edge_list_compacted(text.as_bytes()).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(original.len(), 3);
        assert_eq!(original[0], 1000000000000);
        // node 1 (= raw 5) is adjacent to both others
        assert_eq!(g.degree(NodeId(1)), 2);
    }

    #[test]
    fn non_compacted_rejects_huge_ids() {
        let text = "1000000000000 5\n";
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("compacted"));
    }

    #[test]
    fn tabs_and_extra_whitespace_ok() {
        let g = read_edge_list("0\t1\n 1   2 \n".as_bytes()).unwrap();
        assert_eq!(g.edge_count(), 2);
    }
}
