//! # osn-graph
//!
//! Compact, immutable, undirected graph substrate for random-walk sampling of
//! online social networks.
//!
//! This crate provides everything the walkers in `osn-walks` and the simulated
//! access interface in `osn-client` need from a graph:
//!
//! * [`CsrGraph`] — an immutable compressed-sparse-row adjacency structure
//!   with `O(1)` degree lookup and contiguous neighbor slices.
//! * [`GraphBuilder`] — deduplicating, self-loop-filtering construction from
//!   arbitrary edge streams, plus [`DirectedEdgeList`]
//!   with the paper's mutual-edge directed→undirected conversion.
//! * [`generators`] — synthetic topologies used in the paper's evaluation
//!   (barbell, clustered cliques) and generators used to stand in for the
//!   real OSN snapshots (powerlaw configuration model, attribute homophily).
//! * [`analysis`] — degree distributions, clustering coefficients, triangle
//!   counts, connected components (Table 1 statistics).
//! * [`attributes`] — typed per-node attribute columns (e.g. `reviews_count`)
//!   used by GNRW grouping and aggregate estimation.
//! * [`compact`] — the web-scale substrate: [`CompactCsr`], a delta-encoded
//!   varint compression of the adjacency with an mmap-friendly flat on-disk
//!   layout, a bounded-memory streaming builder
//!   ([`CompactBuilder`]), and a decoded-slice scratch cache
//!   ([`DecodeCache`]) for hot nodes.
//! * [`overlay`] — evolving graphs: the [`DeltaOverlay`] patch layer over
//!   the immutable snapshot (timestamped insert/delete log, per-node patch
//!   lists, zero-cost passthrough for untouched nodes) and the seeded
//!   [`MutationSchedule`] replayed against a virtual clock. Routed
//!   generically over [`CsrGraph`], [`DirectedCsr`], and [`CompactCsr`]
//!   via [`AdjacencyRead`] / [`AdjacencySnapshot`].
//! * [`partition`] — flat stable partitions of index ranges by key, the
//!   storage contract behind the GNRW group-plan precomputation.
//! * [`io`] — plain-text edge-list reading/writing.
//! * [`fnv`] — deterministic FNV-1a hashing, shared by the walkers' history
//!   maps and the client's lock-striped cache (stripe = `fnv(node) % N`).
//!
//! All randomized construction is seeded and deterministic.
//!
//! ## Quick example
//!
//! ```
//! use osn_graph::{GraphBuilder, NodeId};
//!
//! let g = GraphBuilder::new()
//!     .add_edge(0, 1)
//!     .add_edge(1, 2)
//!     .add_edge(2, 0)
//!     .build()
//!     .unwrap();
//! assert_eq!(g.node_count(), 3);
//! assert_eq!(g.edge_count(), 3);
//! assert_eq!(g.degree(NodeId(0)), 2);
//! ```

// `compact::mmap` wraps two libc calls behind a safe view; everything else
// in the crate stays statically unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod attributes;
mod builder;
pub mod compact;
mod csr;
pub mod directed;
mod error;
pub mod fnv;
pub mod generators;
mod ids;
pub mod io;
pub mod mix;
pub mod overlay;
pub mod partition;

pub use builder::GraphBuilder;
pub use compact::{CompactBuilder, CompactCsr, DecodeCache};
pub use csr::CsrGraph;
pub use directed::{DirectedCsr, DirectedEdgeList, UndirectedCast};
pub use error::GraphError;
pub use ids::NodeId;
pub use overlay::{
    AdjacencyRead, AdjacencySnapshot, DeltaOverlay, EdgeMutation, MutationOp, MutationSchedule,
    ScheduleSpec,
};

/// Convenience result alias for fallible graph operations.
pub type Result<T> = std::result::Result<T, GraphError>;
