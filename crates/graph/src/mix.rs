//! SplitMix64 seed mixing — the workspace's single source of derived
//! deterministic streams.
//!
//! Like [`crate::fnv`], this lives at the bottom of the dependency graph so
//! every crate derives streams the same way: walker RNG streams and trial
//! seeds (`osn_walks::multiwalk::stream_seed` delegates here) and the batch
//! endpoint's latency-jitter stream in `osn-client`. One implementation,
//! one set of constants — a tweak here moves every derived stream together
//! instead of silently desynchronizing copies.

/// SplitMix64-derived seed for stream `stream` of base seed `seed` —
/// well-spread and stable across platforms and thread schedules.
pub fn splitmix64_stream(seed: u64, stream: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(stream + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_spread_and_stable() {
        let a = splitmix64_stream(1, 0);
        assert_eq!(a, splitmix64_stream(1, 0));
        assert_ne!(a, splitmix64_stream(1, 1));
        assert_ne!(a, splitmix64_stream(2, 0));
    }
}
