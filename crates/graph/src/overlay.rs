//! Delta overlay over the immutable snapshot: evolving graphs without
//! rebuilding the CSR.
//!
//! Real OSNs mutate while a walker runs. The workspace's substrate —
//! [`CsrGraph`] — is deliberately immutable (every backend's determinism
//! rests on it), so evolution is modeled as a **layer**, not an edit:
//!
//! * [`DeltaOverlay`] — a timestamped edge insert/delete mutation log plus
//!   per-node **patch lists**. A node whose neighborhood was never touched
//!   is served straight from the base snapshot (zero-cost passthrough); a
//!   touched node is served from its materialized patch list, kept sorted
//!   and deduplicated exactly like a CSR slice, so callers cannot tell the
//!   two apart. Lookup is `O(1)` either way; applying one mutation costs
//!   `O(k_v)` to (re)materialize the endpoints' lists.
//! * [`MutationSchedule`] — a deterministic, seeded, timestamped mutation
//!   plan replayed against a virtual clock (`due(now)` drains every event
//!   with `at <= now`), with an explicit cursor so snapshot/resume can
//!   continue a half-played schedule bit-identically.
//! * [`AdjacencyRead`] / [`AdjacencySnapshot`] — the trait pair that routes
//!   the overlay generically over the undirected [`CsrGraph`], the directed
//!   [`DirectedCsr`](crate::directed::DirectedCsr), and the compressed
//!   [`CompactCsr`](crate::compact::CompactCsr): a mutation on a symmetric
//!   snapshot patches both endpoints, on an asymmetric one only the
//!   source's out-list. Slice-backed bases implement both traits and get
//!   the zero-copy [`DeltaOverlay::neighbors`] read path; compressed bases
//!   implement only [`AdjacencyRead`] and combine
//!   [`DeltaOverlay::patched`] with their own decode cache.
//!
//! The conceptual template is incremental view maintenance (DBSP Z-sets /
//! Gupta–Mumick): downstream state — circulation histories in `osn-walks`,
//! the ratio-estimator accumulators in `osn-estimate` — is *corrected* for
//! each delta instead of being rebuilt, and the differential test gate
//! (`tests/overlay_props.rs`) pins the overlay's view to a freshly rebuilt
//! snapshot of the mutated graph, bit for bit.

use crate::fnv::FnvHashMap;
use crate::mix::splitmix64_stream;
use crate::{CsrGraph, NodeId, Result};

/// What one mutation does to the edge (or arc) `u → v`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MutationOp {
    /// Add the edge; a no-op if it already exists.
    Insert,
    /// Remove the edge; a no-op if it does not exist.
    Delete,
}

/// One timestamped edge mutation.
///
/// On a symmetric snapshot (undirected [`CsrGraph`]) this mutates the edge
/// `{u, v}`; on an asymmetric one ([`DirectedCsr`](crate::directed::DirectedCsr))
/// only the arc `u → v`. Self-loops are rejected at application time — the
/// substrate models simple graphs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgeMutation {
    /// Virtual-clock instant at which the mutation takes effect.
    pub at: f64,
    /// Source endpoint.
    pub u: NodeId,
    /// Target endpoint.
    pub v: NodeId,
    /// Insert or delete.
    pub op: MutationOp,
}

impl EdgeMutation {
    /// Convenience constructor for an insert at time `at`.
    pub fn insert(at: f64, u: NodeId, v: NodeId) -> Self {
        EdgeMutation {
            at,
            u,
            v,
            op: MutationOp::Insert,
        }
    }

    /// Convenience constructor for a delete at time `at`.
    pub fn delete(at: f64, u: NodeId, v: NodeId) -> Self {
        EdgeMutation {
            at,
            u,
            v,
            op: MutationOp::Delete,
        }
    }
}

/// A static adjacency the [`DeltaOverlay`] can layer on, whether or not its
/// neighbor lists exist in memory as plain slices.
///
/// The overlay itself is representation-agnostic: it needs the node count,
/// per-node degrees and (decoded) neighbor lists, and one bit of semantics —
/// whether the relation is symmetric (an undirected edge patches both
/// endpoints) or not (a directed arc patches only its source's out-list).
/// Uncompressed snapshots additionally implement [`AdjacencySnapshot`],
/// which upgrades neighbor access to borrowed slices; compressed ones
/// ([`CompactCsr`](crate::compact::CompactCsr)) stop at this trait and serve
/// reads through a decode iterator / scratch cache instead.
pub trait AdjacencyRead {
    /// Whether `u ∈ N(v) ⇔ v ∈ N(u)` (undirected). Drives how a mutation
    /// `{u, v}` is patched: both endpoints when `true`, only `u` otherwise.
    const SYMMETRIC: bool;

    /// Number of nodes (ids `0..n`).
    fn node_count(&self) -> usize;

    /// Degree of `v` (out-degree for a directed snapshot).
    fn read_degree(&self, v: NodeId) -> usize;

    /// Append the sorted, duplicate-free adjacency of `v` to `out`
    /// (out-neighbors for a directed snapshot).
    fn push_neighbors(&self, v: NodeId, out: &mut Vec<NodeId>);

    /// Whether the arc `u → v` exists in the base (ignoring any overlay).
    fn contains_arc(&self, u: NodeId, v: NodeId) -> bool {
        let mut scratch = Vec::with_capacity(self.read_degree(u));
        self.push_neighbors(u, &mut scratch);
        scratch.binary_search(&v).is_ok()
    }

    /// Materialize a fresh snapshot of the mutated graph: the overlay's
    /// view, compiled back into this representation. The differential test
    /// gate compares walks over the overlay against walks over this.
    ///
    /// # Errors
    /// Propagates construction errors of the concrete representation (e.g.
    /// a mutation batch that deletes every edge of every node of a
    /// [`CsrGraph`] still succeeds — the node set never changes — so in
    /// practice this only fails on an empty base).
    fn rebuilt(&self, overlay: &DeltaOverlay) -> Result<Self>
    where
        Self: Sized;
}

/// An [`AdjacencyRead`] whose neighbor lists are resident plain slices,
/// borrowable at zero cost. The overlay's hot read path
/// ([`DeltaOverlay::neighbors`]) requires this; compressed representations
/// route through [`DeltaOverlay::patched`] + their own decode cache.
pub trait AdjacencySnapshot: AdjacencyRead {
    /// The sorted, duplicate-free adjacency slice of `v` (out-neighbors for
    /// a directed snapshot).
    fn neighbor_slice(&self, v: NodeId) -> &[NodeId];
}

impl AdjacencyRead for CsrGraph {
    const SYMMETRIC: bool = true;

    fn node_count(&self) -> usize {
        CsrGraph::node_count(self)
    }

    fn read_degree(&self, v: NodeId) -> usize {
        self.degree(v)
    }

    fn push_neighbors(&self, v: NodeId, out: &mut Vec<NodeId>) {
        out.extend_from_slice(self.neighbors(v));
    }

    fn contains_arc(&self, u: NodeId, v: NodeId) -> bool {
        self.has_edge(u, v)
    }

    fn rebuilt(&self, overlay: &DeltaOverlay) -> Result<Self> {
        let n = CsrGraph::node_count(self);
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u64);
        let mut neighbors = Vec::new();
        for v in self.nodes() {
            neighbors.extend_from_slice(overlay.neighbors(self, v));
            offsets.push(neighbors.len() as u64);
        }
        CsrGraph::from_parts(offsets, neighbors)
    }
}

impl AdjacencySnapshot for CsrGraph {
    fn neighbor_slice(&self, v: NodeId) -> &[NodeId] {
        self.neighbors(v)
    }
}

/// Per-node patch lists plus the applied-mutation log (see module docs).
///
/// The overlay does **not** own the base snapshot: every method takes it as
/// an argument, which keeps the overlay cheap to clone/serialize and lets
/// one `Arc`'d snapshot back many overlays. All calls on one overlay must
/// pass the same base it was populated against.
///
/// ```
/// use osn_graph::{DeltaOverlay, EdgeMutation, GraphBuilder, NodeId};
///
/// let base = GraphBuilder::new().add_edge(0, 1).add_edge(1, 2).build().unwrap();
/// let mut overlay = DeltaOverlay::new();
/// overlay.apply(&base, EdgeMutation::insert(0.5, NodeId(0), NodeId(2)));
/// assert_eq!(overlay.neighbors(&base, NodeId(0)), &[NodeId(1), NodeId(2)]);
/// // Node 1 was never touched: served from the base slice, zero overhead.
/// assert_eq!(overlay.neighbors(&base, NodeId(1)), base.neighbors(NodeId(1)));
/// ```
#[derive(Clone, Debug, Default)]
pub struct DeltaOverlay {
    /// Materialized sorted adjacency for touched nodes only.
    patches: FnvHashMap<u32, Vec<NodeId>>,
    /// Every *effective* mutation applied, in application order.
    log: Vec<EdgeMutation>,
}

impl DeltaOverlay {
    /// New overlay with no deltas: every read passes through to the base.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replay a previously recorded log against `base` — the restore side
    /// of snapshot/resume. The result is identical to the overlay that
    /// produced the log.
    pub fn from_log<G: AdjacencyRead>(base: &G, log: &[EdgeMutation]) -> Self {
        let mut overlay = Self::new();
        for &m in log {
            overlay.apply(base, m);
        }
        overlay
    }

    /// Whether any node is patched.
    pub fn is_empty(&self) -> bool {
        self.patches.is_empty()
    }

    /// Number of patched (touched) nodes.
    pub fn patched_nodes(&self) -> usize {
        self.patches.len()
    }

    /// Every effective mutation applied so far, in application order —
    /// the serialization surface for snapshot/resume.
    pub fn log(&self) -> &[EdgeMutation] {
        &self.log
    }

    /// The touched node ids, sorted (deterministic iteration order for
    /// rebuilds, invalidation sweeps, and tests).
    pub fn touched_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.patches.keys().map(|&v| NodeId(v)).collect();
        nodes.sort_unstable();
        nodes
    }

    /// Approximate heap footprint of the patch lists and log, in bytes —
    /// the soak harness's memory-bound witness.
    pub fn heap_bytes(&self) -> usize {
        self.patches
            .values()
            .map(|p| {
                std::mem::size_of::<Vec<NodeId>>() + p.capacity() * std::mem::size_of::<NodeId>()
            })
            .sum::<usize>()
            + self.log.capacity() * std::mem::size_of::<EdgeMutation>()
    }

    /// The adjacency of `v` at the overlay's current virtual time: the
    /// patch list when `v` was touched, the base slice otherwise. Sorted
    /// and duplicate-free in both cases.
    ///
    /// Requires a slice-backed base; over a compressed base use
    /// [`patched`](Self::patched) and fall back to the base's own decode
    /// path (see `osn-client`'s compact topology).
    pub fn neighbors<'a, G: AdjacencySnapshot>(&'a self, base: &'a G, v: NodeId) -> &'a [NodeId] {
        match self.patches.get(&v.0) {
            Some(patch) => patch,
            None => base.neighbor_slice(v),
        }
    }

    /// The patch list of `v`, if this overlay touched it. `None` means the
    /// base adjacency is current — the representation-agnostic read path.
    pub fn patched(&self, v: NodeId) -> Option<&[NodeId]> {
        self.patches.get(&v.0).map(Vec::as_slice)
    }

    /// Degree of `v` under the overlay.
    pub fn degree<G: AdjacencyRead>(&self, base: &G, v: NodeId) -> usize {
        match self.patches.get(&v.0) {
            Some(patch) => patch.len(),
            None => base.read_degree(v),
        }
    }

    /// Whether the edge (arc) `u → v` exists under the overlay.
    pub fn has_edge<G: AdjacencyRead>(&self, base: &G, u: NodeId, v: NodeId) -> bool {
        match self.patches.get(&u.0) {
            Some(patch) => patch.binary_search(&v).is_ok(),
            None => base.contains_arc(u, v),
        }
    }

    /// Apply one mutation. Returns `true` when the topology actually
    /// changed (the edge was absent for an insert / present for a delete
    /// and the endpoints are in range and distinct); ineffective mutations
    /// change nothing and are kept out of the log.
    pub fn apply<G: AdjacencyRead>(&mut self, base: &G, m: EdgeMutation) -> bool {
        let n = base.node_count();
        if m.u == m.v || m.u.index() >= n || m.v.index() >= n {
            return false;
        }
        let present = self.has_edge(base, m.u, m.v);
        let effective = match m.op {
            MutationOp::Insert => !present,
            MutationOp::Delete => present,
        };
        if !effective {
            return false;
        }
        self.patch(base, m.u, m.v, m.op);
        if G::SYMMETRIC {
            self.patch(base, m.v, m.u, m.op);
        }
        self.log.push(m);
        true
    }

    /// Apply a batch in order; returns the sorted, deduplicated set of
    /// nodes whose adjacency actually changed — exactly the set whose
    /// walker circulation state must be invalidated.
    pub fn apply_batch<G: AdjacencyRead>(
        &mut self,
        base: &G,
        batch: &[EdgeMutation],
    ) -> Vec<NodeId> {
        let mut touched = Vec::new();
        for &m in batch {
            if self.apply(base, m) {
                touched.push(m.u);
                if G::SYMMETRIC {
                    touched.push(m.v);
                }
            }
        }
        touched.sort_unstable();
        touched.dedup();
        touched
    }

    /// (Re)materialize `from`'s patch list and edit `to` into/out of it.
    fn patch<G: AdjacencyRead>(&mut self, base: &G, from: NodeId, to: NodeId, op: MutationOp) {
        let patch = self.patches.entry(from.0).or_insert_with(|| {
            let mut list = Vec::with_capacity(base.read_degree(from) + 1);
            base.push_neighbors(from, &mut list);
            list
        });
        match (op, patch.binary_search(&to)) {
            (MutationOp::Insert, Err(i)) => patch.insert(i, to),
            (MutationOp::Delete, Ok(i)) => {
                patch.remove(i);
            }
            // `apply` established effectiveness on one endpoint; the other
            // endpoint of a symmetric snapshot agrees by the symmetry
            // invariant, so these arms are unreachable in practice.
            _ => {}
        }
    }
}

/// Seeded generation parameters for [`MutationSchedule::generate`].
#[derive(Clone, Copy, Debug)]
pub struct ScheduleSpec {
    /// Number of mutation events to generate.
    pub events: usize,
    /// Timestamps are drawn uniformly from `[0, horizon_secs)` and sorted.
    pub horizon_secs: f64,
    /// Fraction of events that delete an existing edge (the rest insert a
    /// currently-absent one). Clamped to `[0, 1]`.
    pub delete_fraction: f64,
    /// Seed of the deterministic generation stream.
    pub seed: u64,
}

impl Default for ScheduleSpec {
    fn default() -> Self {
        ScheduleSpec {
            events: 32,
            horizon_secs: 1.0,
            delete_fraction: 0.5,
            seed: 0,
        }
    }
}

impl ScheduleSpec {
    /// Spec with `events` events over `horizon_secs`, seeded by `seed`.
    pub fn new(events: usize, horizon_secs: f64, seed: u64) -> Self {
        ScheduleSpec {
            events,
            horizon_secs: horizon_secs.max(0.0),
            delete_fraction: 0.5,
            seed,
        }
    }

    /// Set the delete fraction (clamped to `[0, 1]`).
    #[must_use]
    pub fn with_delete_fraction(mut self, f: f64) -> Self {
        self.delete_fraction = f.clamp(0.0, 1.0);
        self
    }
}

/// A deterministic timestamped mutation plan with a replay cursor.
///
/// Events are held sorted by timestamp; [`due`](Self::due) drains every
/// event with `at <= now` and advances the cursor, so driving the schedule
/// off a virtual clock (batch/reactor backends) or a step counter mapped to
/// time (serial backends) replays the identical mutation sequence. The
/// cursor is exported/imported for snapshot/resume.
#[derive(Clone, Debug, Default)]
pub struct MutationSchedule {
    events: Vec<EdgeMutation>,
    cursor: usize,
}

impl MutationSchedule {
    /// Build from explicit events (stably sorted by timestamp).
    pub fn from_events(mut events: Vec<EdgeMutation>) -> Self {
        events.sort_by(|a, b| a.at.total_cmp(&b.at));
        MutationSchedule { events, cursor: 0 }
    }

    /// Generate a seeded schedule against `base`: every event is
    /// *effective* at its point in the replay (deletes hit an edge that
    /// exists then, inserts an edge absent then), so `apply_batch` over the
    /// full schedule touches `2 × events` endpoint slots on an undirected
    /// base. Fully deterministic in `spec.seed`.
    pub fn generate(base: &CsrGraph, spec: &ScheduleSpec) -> Self {
        let n = base.node_count() as u64;
        let mut stream = 0u64;
        let mut next = || {
            stream += 1;
            splitmix64_stream(spec.seed, stream)
        };
        let unit = |r: u64| (r >> 11) as f64 / (1u64 << 53) as f64;

        // Sorted uniform timestamps over the horizon.
        let mut times: Vec<f64> = (0..spec.events)
            .map(|_| unit(next()) * spec.horizon_secs)
            .collect();
        times.sort_by(f64::total_cmp);

        // Track the evolving edge set so every event is effective.
        let mut scratch = DeltaOverlay::new();
        let mut edges: Vec<(u32, u32)> = base.edges().map(|(u, v)| (u.0, v.0)).collect();
        let mut events = Vec::with_capacity(spec.events);
        for at in times {
            let delete = !edges.is_empty() && unit(next()) < spec.delete_fraction;
            if delete {
                let i = (next() % edges.len() as u64) as usize;
                let (u, v) = edges.swap_remove(i);
                let m = EdgeMutation::delete(at, NodeId(u), NodeId(v));
                scratch.apply(base, m);
                events.push(m);
            } else {
                // Rejection-sample an absent, non-loop pair (bounded: give
                // up after a fixed number of tries on near-complete graphs).
                let mut placed = false;
                for _ in 0..64 {
                    let u = (next() % n) as u32;
                    let v = (next() % n) as u32;
                    if u == v || scratch.has_edge(base, NodeId(u), NodeId(v)) {
                        continue;
                    }
                    let m = EdgeMutation::insert(at, NodeId(u), NodeId(v));
                    scratch.apply(base, m);
                    events.push(m);
                    edges.push((u, v));
                    placed = true;
                    break;
                }
                if !placed && !edges.is_empty() {
                    let i = (next() % edges.len() as u64) as usize;
                    let (u, v) = edges.swap_remove(i);
                    let m = EdgeMutation::delete(at, NodeId(u), NodeId(v));
                    scratch.apply(base, m);
                    events.push(m);
                }
            }
        }
        MutationSchedule { events, cursor: 0 }
    }

    /// All events, sorted by timestamp.
    pub fn events(&self) -> &[EdgeMutation] {
        &self.events
    }

    /// Total number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule holds no events at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events not yet drained by [`due`](Self::due).
    pub fn remaining(&self) -> usize {
        self.events.len() - self.cursor
    }

    /// The replay cursor (events already drained) — exported by
    /// snapshot/resume.
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Restore a cursor exported by [`cursor`](Self::cursor).
    ///
    /// # Errors
    /// When `cursor` exceeds the event count.
    pub fn set_cursor(&mut self, cursor: usize) -> std::result::Result<(), String> {
        if cursor > self.events.len() {
            return Err(format!(
                "schedule cursor {cursor} out of range for {} event(s)",
                self.events.len()
            ));
        }
        self.cursor = cursor;
        Ok(())
    }

    /// Timestamp of the next undrained event, `None` when exhausted.
    pub fn peek_next_at(&self) -> Option<f64> {
        self.events.get(self.cursor).map(|m| m.at)
    }

    /// Drain every event with `at <= now`, in timestamp order, advancing
    /// the cursor past them. Idempotent for a non-advancing clock.
    pub fn due(&mut self, now: f64) -> &[EdgeMutation] {
        let start = self.cursor;
        let mut end = start;
        while end < self.events.len() && self.events[end].at <= now {
            end += 1;
        }
        self.cursor = end;
        &self.events[start..end]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path4() -> CsrGraph {
        // 0 - 1 - 2 - 3
        GraphBuilder::new()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(2, 3)
            .build()
            .unwrap()
    }

    #[test]
    fn untouched_nodes_pass_through() {
        let g = path4();
        let overlay = DeltaOverlay::new();
        for v in g.nodes() {
            // Identical pointers, not just identical contents.
            assert!(std::ptr::eq(overlay.neighbors(&g, v), g.neighbors(v)));
        }
        assert!(overlay.is_empty());
        assert_eq!(overlay.patched_nodes(), 0);
    }

    #[test]
    fn insert_and_delete_patch_both_endpoints() {
        let g = path4();
        let mut overlay = DeltaOverlay::new();
        assert!(overlay.apply(&g, EdgeMutation::insert(0.1, NodeId(0), NodeId(3))));
        assert_eq!(overlay.neighbors(&g, NodeId(0)), &[NodeId(1), NodeId(3)]);
        assert_eq!(overlay.neighbors(&g, NodeId(3)), &[NodeId(0), NodeId(2)]);
        assert!(overlay.apply(&g, EdgeMutation::delete(0.2, NodeId(1), NodeId(2))));
        assert_eq!(overlay.neighbors(&g, NodeId(1)), &[NodeId(0)]);
        assert_eq!(overlay.neighbors(&g, NodeId(2)), &[NodeId(3)]);
        assert_eq!(
            overlay.touched_nodes(),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
        assert_eq!(overlay.log().len(), 2);
    }

    #[test]
    fn ineffective_mutations_are_noops() {
        let g = path4();
        let mut overlay = DeltaOverlay::new();
        // Duplicate insert, absent delete, self-loop, out of range.
        assert!(!overlay.apply(&g, EdgeMutation::insert(0.0, NodeId(0), NodeId(1))));
        assert!(!overlay.apply(&g, EdgeMutation::delete(0.0, NodeId(0), NodeId(3))));
        assert!(!overlay.apply(&g, EdgeMutation::insert(0.0, NodeId(2), NodeId(2))));
        assert!(!overlay.apply(&g, EdgeMutation::insert(0.0, NodeId(0), NodeId(9))));
        assert!(overlay.is_empty());
        assert!(overlay.log().is_empty());
    }

    #[test]
    fn rebuilt_matches_overlay_view() {
        let g = path4();
        let mut overlay = DeltaOverlay::new();
        let batch = vec![
            EdgeMutation::insert(0.1, NodeId(0), NodeId(2)),
            EdgeMutation::delete(0.2, NodeId(2), NodeId(3)),
            EdgeMutation::insert(0.3, NodeId(1), NodeId(3)),
        ];
        let touched = overlay.apply_batch(&g, &batch);
        assert_eq!(touched, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        let rebuilt = g.rebuilt(&overlay).unwrap();
        assert_eq!(rebuilt.node_count(), g.node_count());
        for v in g.nodes() {
            assert_eq!(overlay.neighbors(&g, v), rebuilt.neighbors(v), "node {v}");
        }
        assert_eq!(rebuilt.edge_count(), 4);
    }

    #[test]
    fn from_log_replays_identically() {
        let g = path4();
        let mut overlay = DeltaOverlay::new();
        overlay.apply(&g, EdgeMutation::insert(0.1, NodeId(0), NodeId(2)));
        overlay.apply(&g, EdgeMutation::delete(0.5, NodeId(0), NodeId(2)));
        overlay.apply(&g, EdgeMutation::insert(0.9, NodeId(1), NodeId(3)));
        let replayed = DeltaOverlay::from_log(&g, overlay.log());
        for v in g.nodes() {
            assert_eq!(replayed.neighbors(&g, v), overlay.neighbors(&g, v));
        }
        assert_eq!(replayed.log(), overlay.log());
    }

    #[test]
    fn insert_then_delete_round_trips_topology() {
        let g = path4();
        let mut overlay = DeltaOverlay::new();
        overlay.apply(&g, EdgeMutation::insert(0.1, NodeId(0), NodeId(3)));
        overlay.apply(&g, EdgeMutation::delete(0.2, NodeId(0), NodeId(3)));
        // Patched (no longer passthrough) but content-identical to base.
        for v in g.nodes() {
            assert_eq!(overlay.neighbors(&g, v), g.neighbors(v));
        }
        assert!(overlay.heap_bytes() > 0);
    }

    #[test]
    fn schedule_generation_is_deterministic_and_effective() {
        let g = path4();
        let spec = ScheduleSpec::new(16, 2.0, 42);
        let a = MutationSchedule::generate(&g, &spec);
        let b = MutationSchedule::generate(&g, &spec);
        assert_eq!(a.events(), b.events());
        assert_eq!(a.len(), 16);
        // Timestamps sorted within the horizon.
        assert!(a.events().windows(2).all(|w| w[0].at <= w[1].at));
        assert!(a.events().iter().all(|m| (0.0..2.0).contains(&m.at)));
        // Every event is effective when replayed in order.
        let mut overlay = DeltaOverlay::new();
        for &m in a.events() {
            assert!(overlay.apply(&g, m), "generated event must be effective");
        }
    }

    #[test]
    fn due_drains_by_timestamp_and_cursor_restores() {
        let mut s = MutationSchedule::from_events(vec![
            EdgeMutation::insert(0.5, NodeId(0), NodeId(2)),
            EdgeMutation::insert(0.1, NodeId(1), NodeId(3)),
            EdgeMutation::delete(0.9, NodeId(0), NodeId(1)),
        ]);
        assert_eq!(s.peek_next_at(), Some(0.1));
        assert_eq!(s.due(0.0), &[]);
        let first = s.due(0.6).to_vec();
        assert_eq!(first.len(), 2);
        assert!(first.iter().all(|m| m.at <= 0.6));
        assert_eq!(s.remaining(), 1);
        let cursor = s.cursor();

        let mut resumed = MutationSchedule::from_events(s.events().to_vec());
        resumed.set_cursor(cursor).unwrap();
        assert_eq!(resumed.due(10.0), s.due(10.0));
        assert_eq!(resumed.remaining(), 0);
        assert!(resumed.set_cursor(99).is_err());
    }

    #[test]
    fn delete_fraction_extremes() {
        let g = GraphBuilder::new()
            .with_nodes(12)
            .extend_edges((0..11u32).map(|i| (i, i + 1)))
            .build()
            .unwrap();
        let all_deletes =
            MutationSchedule::generate(&g, &ScheduleSpec::new(8, 1.0, 7).with_delete_fraction(1.0));
        assert!(all_deletes
            .events()
            .iter()
            .all(|m| m.op == MutationOp::Delete));
        let all_inserts =
            MutationSchedule::generate(&g, &ScheduleSpec::new(8, 1.0, 7).with_delete_fraction(0.0));
        assert!(all_inserts
            .events()
            .iter()
            .all(|m| m.op == MutationOp::Insert));
    }
}
