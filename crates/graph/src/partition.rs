//! Flat stable partitions of index ranges by `u64` key.
//!
//! GNRW partitions each node's neighbor slice into groups; the group-plan
//! precomputation in `osn-walks` needs that partition in **CSR-style flat
//! storage** (a permutation of local indices plus group end offsets) rather
//! than a hash map of `Vec`s. The routine here is the single source of
//! truth for the ordering contract both the precomputed plan and the
//! per-step scratch path rely on:
//!
//! * groups are emitted in **ascending key order**, and
//! * within a group, members keep their **original index order**.
//!
//! That pair of invariants is what makes a plan-backed walk bit-identical
//! to the recompute-per-step walk when RNG draw order is preserved.

/// Reusable output buffers for [`partition_by_key`] — hold these across
/// calls to build a whole graph's partition without re-allocating.
#[derive(Debug, Default, Clone)]
pub struct FlatPartition {
    /// Permutation of `0..keys.len()`: members grouped contiguously,
    /// groups in ascending key order, original order within a group.
    pub perm: Vec<u32>,
    /// End offset (exclusive, into `perm`) of each group; `ends.len()` is
    /// the number of distinct keys.
    pub ends: Vec<u32>,
    /// The distinct keys, ascending, parallel to `ends`.
    pub keys: Vec<u64>,
    scratch: Vec<u32>,
}

impl FlatPartition {
    /// Number of groups in the last partition.
    pub fn group_count(&self) -> usize {
        self.ends.len()
    }

    /// Half-open `perm` range of group `g`.
    pub fn group_bounds(&self, g: usize) -> (usize, usize) {
        let start = if g == 0 { 0 } else { self.ends[g - 1] as usize };
        (start, self.ends[g] as usize)
    }
}

/// Partition the index range `0..keys.len()` by key into `out`, replacing
/// its previous contents.
///
/// Stable: ties keep ascending index order. Cost is one sort of
/// `keys.len()` `u32`s (the scratch buffer is reused across calls).
///
/// ```
/// use osn_graph::partition::{partition_by_key, FlatPartition};
///
/// let mut p = FlatPartition::default();
/// partition_by_key(&[7, 3, 7, 3, 9], &mut p);
/// assert_eq!(p.keys, vec![3, 7, 9]);
/// assert_eq!(p.ends, vec![2, 4, 5]);
/// assert_eq!(p.perm, vec![1, 3, 0, 2, 4]); // stable within each group
/// ```
pub fn partition_by_key(keys: &[u64], out: &mut FlatPartition) {
    assert!(
        keys.len() <= u32::MAX as usize,
        "partition index range exceeds u32"
    );
    out.perm.clear();
    out.ends.clear();
    out.keys.clear();
    out.scratch.clear();
    out.scratch.extend(0..keys.len() as u32);
    // Stable under (key, index): sorting by key alone with `sort_unstable`
    // could reorder equal keys, so tie-break on the index explicitly.
    out.scratch.sort_unstable_by_key(|&i| (keys[i as usize], i));
    for &i in &out.scratch {
        let key = keys[i as usize];
        if out.keys.last() != Some(&key) {
            out.keys.push(key);
            out.ends.push(out.perm.len() as u32);
        }
        out.perm.push(i);
        *out.ends.last_mut().expect("group open") = out.perm.len() as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_yields_empty_partition() {
        let mut p = FlatPartition::default();
        partition_by_key(&[], &mut p);
        assert!(p.perm.is_empty() && p.ends.is_empty() && p.keys.is_empty());
        assert_eq!(p.group_count(), 0);
    }

    #[test]
    fn single_key_is_identity() {
        let mut p = FlatPartition::default();
        partition_by_key(&[5, 5, 5], &mut p);
        assert_eq!(p.perm, vec![0, 1, 2]);
        assert_eq!(p.ends, vec![3]);
        assert_eq!(p.keys, vec![5]);
        assert_eq!(p.group_bounds(0), (0, 3));
    }

    #[test]
    fn groups_sorted_and_stable() {
        let mut p = FlatPartition::default();
        partition_by_key(&[2, 0, 2, 1, 0, 2], &mut p);
        assert_eq!(p.keys, vec![0, 1, 2]);
        assert_eq!(p.ends, vec![2, 3, 6]);
        assert_eq!(p.perm, vec![1, 4, 3, 0, 2, 5]);
        assert_eq!(p.group_bounds(2), (3, 6));
    }

    #[test]
    fn buffers_are_reusable() {
        let mut p = FlatPartition::default();
        partition_by_key(&[9, 9], &mut p);
        partition_by_key(&[1], &mut p);
        assert_eq!(p.perm, vec![0]);
        assert_eq!(p.ends, vec![1]);
        assert_eq!(p.keys, vec![1]);
    }

    #[test]
    fn perm_is_a_permutation() {
        let keys: Vec<u64> = (0..97).map(|i| (i * 31) % 7).collect();
        let mut p = FlatPartition::default();
        partition_by_key(&keys, &mut p);
        let mut seen = vec![false; keys.len()];
        for &i in &p.perm {
            assert!(!seen[i as usize], "duplicate index {i}");
            seen[i as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(p.ends.last().copied(), Some(keys.len() as u32));
    }
}
