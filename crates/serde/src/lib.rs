//! # osn-serde
//!
//! The workspace's serialization layer: a small self-describing [`Value`]
//! tree with [`ToValue`] / [`FromValue`] conversion traits, a **pretty**
//! JSON writer (byte-compatible with the layout the experiment harness has
//! always emitted — existing `*.json` artifacts round-trip unchanged), a
//! **compact** one-line writer for snapshots, and a parser reporting
//! [`ParseError`]s with byte offsets.
//!
//! The build environment has no registry access for `serde`, and the
//! workspace's schemas (experiment artifacts, job snapshots) are small
//! enough that a bespoke value tree is simpler than vendoring a framework.
//! This crate replaces the hand-rolled JSON module that used to live inside
//! `osn-experiments::output`, generalizing it from two fixed container
//! shapes to arbitrary trees so the service layer can serialize walker, RNG
//! and estimator state through the same API.
//!
//! ## Canonical form
//!
//! Integers and floats are distinct: [`Value::Uint`] / [`Value::Int`] hold
//! exact integers (RNG words, cursors, node ids), while [`Value::Num`]
//! floats are always written with a decimal point or exponent so they parse
//! back as floats. The parser mirrors this: an integer token becomes `Uint`
//! (non-negative) or `Int` (negative), anything with `.`/`e`/`E` becomes
//! `Num`. Non-finite floats are written as strings (`"inf"`, `"-inf"`,
//! `"NaN"`) — the historical artifact convention — and
//! `f64::`[`FromValue`] accepts that string form back. On trees in
//! canonical form with finite floats, `parse ∘ write` is the identity for
//! both writers (pinned by a property test).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// A parsed or constructed value tree (the JSON data model, with exact
/// integers split out from floats).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Null.
    Null,
    /// Boolean.
    Bool(bool),
    /// Non-negative integer, exact (canonical form for integers `>= 0`).
    Uint(u64),
    /// Negative integer, exact (canonical form holds only negatives; a
    /// non-negative `Int` still writes correctly but parses back as `Uint`).
    Int(i64),
    /// Float. Always written with a `.` or exponent; non-finite values are
    /// written as strings.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object as ordered key/value pairs (insertion order is preserved and
    /// duplicate keys are kept verbatim).
    Obj(Vec<(String, Value)>),
}

/// Convert a Rust value into a [`Value`] tree.
pub trait ToValue {
    /// Build the value tree.
    fn to_value(&self) -> Value;
}

/// Reconstruct a Rust value from a [`Value`] tree.
pub trait FromValue: Sized {
    /// Parse the tree; errors are human-readable schema messages.
    ///
    /// # Errors
    /// Returns a message naming the expected shape when `value` does not
    /// encode a `Self`.
    fn from_value(value: &Value) -> Result<Self, String>;
}

impl Value {
    /// Build an object from `(key, value)` pairs, e.g.
    /// `Value::obj([("x", 1u64.to_value())])`.
    pub fn obj<'a>(fields: impl IntoIterator<Item = (&'a str, Value)>) -> Value {
        Value::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Build an array by converting each element.
    pub fn arr<T: ToValue>(items: &[T]) -> Value {
        Value::Arr(items.iter().map(ToValue::to_value).collect())
    }

    /// Short name of this value's shape, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Uint(_) | Value::Int(_) => "integer",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }

    /// Object field lookup (first match), `None` when absent or not an
    /// object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required object field.
    ///
    /// # Errors
    /// Errors when `self` is not an object or lacks `key`.
    pub fn field(&self, key: &str) -> Result<&Value, String> {
        match self {
            Value::Obj(_) => self
                .get(key)
                .ok_or_else(|| format!("missing field `{key}`")),
            other => Err(format!("expected object, got {}", other.type_name())),
        }
    }

    /// Decode into any [`FromValue`] type: `v.decode::<Vec<f64>>()?`.
    ///
    /// # Errors
    /// Propagates the type's [`FromValue`] error.
    pub fn decode<T: FromValue>(&self) -> Result<T, String> {
        T::from_value(self)
    }

    /// The object's fields.
    ///
    /// # Errors
    /// Errors when `self` is not an object.
    pub fn as_object(&self) -> Result<&[(String, Value)], String> {
        match self {
            Value::Obj(fields) => Ok(fields),
            other => Err(format!("expected object, got {}", other.type_name())),
        }
    }

    /// The array's items.
    ///
    /// # Errors
    /// Errors when `self` is not an array.
    pub fn as_array(&self) -> Result<&[Value], String> {
        match self {
            Value::Arr(items) => Ok(items),
            other => Err(format!("expected array, got {}", other.type_name())),
        }
    }

    /// The string's contents.
    ///
    /// # Errors
    /// Errors when `self` is not a string.
    pub fn as_str(&self) -> Result<&str, String> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(format!("expected string, got {}", other.type_name())),
        }
    }

    /// Render in the pretty multi-line layout (2-space indent, scalar
    /// arrays inline) — byte-identical to the historical experiment-artifact
    /// format.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        write_pretty(self, &mut out, 0);
        out
    }

    /// Render on one line with no whitespace — the snapshot wire form.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        write_compact(self, &mut out);
        out
    }

    /// Parse a document produced by either writer (or any JSON within this
    /// crate's subset: no exponent-less huge integers beyond `u64`/`i64`
    /// keep exactness, see [`Value::Uint`]).
    ///
    /// # Errors
    /// Returns a [`ParseError`] carrying the byte offset of the problem.
    pub fn parse(input: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err_at(p.pos, "trailing input"));
        }
        Ok(v)
    }
}

/// A parse failure with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where the problem was detected.
    pub offset: usize,
    /// What went wrong (without the offset; [`fmt::Display`] appends it).
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

// ---------------------------------------------------------------------------
// Writers
// ---------------------------------------------------------------------------

fn push_indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_scalar(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Uint(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Num(x) => {
            if x.is_finite() {
                out.push_str(&format_float(*x));
            } else {
                // Historical convention: non-finite floats as strings.
                out.push('"');
                out.push_str(&x.to_string());
                out.push('"');
            }
        }
        Value::Str(s) => escape_string(s, out),
        Value::Arr(_) | Value::Obj(_) => unreachable!("containers handled by callers"),
    }
}

/// Shortest round-trip decimal form, always with a decimal point or
/// exponent so the value reads back as a float, never an integer.
fn format_float(x: f64) -> String {
    let s = format!("{x}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

fn escape_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn is_container(v: &Value) -> bool {
    matches!(v, Value::Arr(_) | Value::Obj(_))
}

fn write_pretty(v: &Value, out: &mut String, level: usize) {
    match v {
        Value::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, level + 1);
                escape_string(key, out);
                out.push_str(": ");
                write_pretty(val, out, level + 1);
            }
            out.push('\n');
            push_indent(out, level);
            out.push('}');
        }
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
            } else if items.iter().any(is_container) {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, level + 1);
                    write_pretty(item, out, level + 1);
                }
                out.push('\n');
                push_indent(out, level);
                out.push(']');
            } else {
                // All-scalar arrays inline: `[1, 2, 3]`.
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_scalar(item, out);
                }
                out.push(']');
            }
        }
        scalar => write_scalar(scalar, out),
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Obj(fields) => {
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_string(key, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        scalar => write_scalar(scalar, out),
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err_at(&self, offset: usize, message: impl Into<String>) -> ParseError {
        ParseError {
            offset,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, ParseError> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| self.err_at(self.pos, "unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        let got = self.peek()?;
        if got != b {
            return Err(self.err_at(
                self.pos,
                format!("expected `{}`, got `{}`", b as char, got as char),
            ));
        }
        self.pos += 1;
        Ok(())
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::Str(self.string_value()?)),
            b't' | b'f' | b'n' => self.keyword(),
            _ => self.number(),
        }
    }

    fn keyword(&mut self) -> Result<Value, ParseError> {
        for (text, value) in [
            ("true", Value::Bool(true)),
            ("false", Value::Bool(false)),
            ("null", Value::Null),
        ] {
            if self.bytes[self.pos..].starts_with(text.as_bytes()) {
                self.pos += text.len();
                return Ok(value);
            }
        }
        Err(self.err_at(self.pos, "invalid literal"))
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            if self.peek()? != b'"' {
                return Err(self.err_at(self.pos, "expected string key"));
            }
            let key = self.string_value()?;
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                other => {
                    return Err(self.err_at(
                        self.pos,
                        format!("expected `,` or `}}`, got `{}`", other as char),
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(self.err_at(
                        self.pos,
                        format!("expected `,` or `]`, got `{}`", other as char),
                    ))
                }
            }
        }
    }

    fn string_value(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| self.err_at(self.pos, "unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => break,
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err_at(self.pos, "unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err_at(self.pos, "truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err_at(self.pos, "non-utf8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16).map_err(|_| {
                                self.err_at(self.pos, format!("bad \\u escape `{hex}`"))
                            })?;
                            self.pos += 4;
                            out.push(char::from_u32(code).ok_or_else(|| {
                                self.err_at(self.pos, format!("invalid codepoint {code}"))
                            })?);
                        }
                        other => {
                            return Err(self
                                .err_at(self.pos - 1, format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode multi-byte UTF-8 sequences from the raw byte
                    // stream.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err_at(start, "truncated utf-8 sequence"))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| self.err_at(start, "invalid utf-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
        Ok(out)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number bytes");
        let bad = || ParseError {
            offset: start,
            message: format!("bad number `{text}`"),
        };
        if text.contains(['.', 'e', 'E']) {
            return text.parse::<f64>().map(Value::Num).map_err(|_| bad());
        }
        // Integer token: keep exactness. Canonical form sends non-negative
        // integers to `Uint` and negatives to `Int`; out-of-range integers
        // degrade to a float rather than failing.
        if text.starts_with('-') {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        } else if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::Uint(u));
        }
        text.parse::<f64>().map(Value::Num).map_err(|_| bad())
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

// ---------------------------------------------------------------------------
// ToValue / FromValue impls
// ---------------------------------------------------------------------------

impl ToValue for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl FromValue for Value {
    fn from_value(value: &Value) -> Result<Self, String> {
        Ok(value.clone())
    }
}

impl ToValue for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl FromValue for bool {
    fn from_value(value: &Value) -> Result<Self, String> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {}", other.type_name())),
        }
    }
}

impl ToValue for u64 {
    fn to_value(&self) -> Value {
        Value::Uint(*self)
    }
}

impl FromValue for u64 {
    fn from_value(value: &Value) -> Result<Self, String> {
        match value {
            Value::Uint(u) => Ok(*u),
            Value::Int(i) if *i >= 0 => Ok(*i as u64),
            other => Err(format!(
                "expected unsigned integer, got {}",
                other.type_name()
            )),
        }
    }
}

impl ToValue for u32 {
    fn to_value(&self) -> Value {
        Value::Uint(u64::from(*self))
    }
}

impl FromValue for u32 {
    fn from_value(value: &Value) -> Result<Self, String> {
        let u = u64::from_value(value)?;
        u32::try_from(u).map_err(|_| format!("integer {u} out of u32 range"))
    }
}

impl ToValue for u8 {
    fn to_value(&self) -> Value {
        Value::Uint(u64::from(*self))
    }
}

impl FromValue for u8 {
    fn from_value(value: &Value) -> Result<Self, String> {
        let u = u64::from_value(value)?;
        u8::try_from(u).map_err(|_| format!("integer {u} out of u8 range"))
    }
}

impl ToValue for usize {
    fn to_value(&self) -> Value {
        Value::Uint(*self as u64)
    }
}

impl FromValue for usize {
    fn from_value(value: &Value) -> Result<Self, String> {
        let u = u64::from_value(value)?;
        usize::try_from(u).map_err(|_| format!("integer {u} out of usize range"))
    }
}

impl ToValue for i64 {
    fn to_value(&self) -> Value {
        if *self >= 0 {
            Value::Uint(*self as u64)
        } else {
            Value::Int(*self)
        }
    }
}

impl FromValue for i64 {
    fn from_value(value: &Value) -> Result<Self, String> {
        match value {
            Value::Int(i) => Ok(*i),
            Value::Uint(u) => {
                i64::try_from(*u).map_err(|_| format!("integer {u} out of i64 range"))
            }
            other => Err(format!("expected integer, got {}", other.type_name())),
        }
    }
}

impl ToValue for f64 {
    fn to_value(&self) -> Value {
        Value::Num(*self)
    }
}

impl FromValue for f64 {
    fn from_value(value: &Value) -> Result<Self, String> {
        match value {
            Value::Num(x) => Ok(*x),
            Value::Uint(u) => Ok(*u as f64),
            Value::Int(i) => Ok(*i as f64),
            // Non-finite floats are encoded as strings ("inf", "NaN").
            Value::Str(s) => s
                .parse::<f64>()
                .map_err(|_| format!("expected number, got string `{s}`")),
            other => Err(format!("expected number, got {}", other.type_name())),
        }
    }
}

impl ToValue for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl FromValue for String {
    fn from_value(value: &Value) -> Result<Self, String> {
        value.as_str().map(str::to_owned)
    }
}

impl ToValue for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl<T: ToValue> ToValue for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(ToValue::to_value).collect())
    }
}

impl<T: FromValue> FromValue for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, String> {
        value.as_array()?.iter().map(T::from_value).collect()
    }
}

impl<T: ToValue> ToValue for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: FromValue> FromValue for Option<T> {
    fn from_value(value: &Value) -> Result<Self, String> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Value {
        Value::obj([
            ("id", "figX".to_value()),
            ("count", 3u64.to_value()),
            ("offset", (-7i64).to_value()),
            ("ratio", 0.25f64.to_value()),
            ("flag", true.to_value()),
            ("missing", Value::Null),
            ("xs", Value::arr(&[20.0f64, 40.0])),
            (
                "series",
                Value::Arr(vec![Value::obj([
                    ("label", "SRW".to_value()),
                    ("y", Value::arr(&[0.5f64, 0.25])),
                ])]),
            ),
            ("notes", Value::Arr(vec![])),
        ])
    }

    #[test]
    fn pretty_layout_matches_historical_format() {
        let v = Value::obj([
            ("id", "figX".to_value()),
            (
                "series",
                Value::Arr(vec![
                    Value::obj([
                        ("label", "SRW".to_value()),
                        ("x", Value::arr(&[20.0f64, 40.0])),
                    ]),
                    Value::obj([("label", "CNRW".to_value()), ("x", Value::Arr(vec![]))]),
                ]),
            ),
            ("notes", Value::Arr(vec!["a".to_value(), "b".to_value()])),
        ]);
        let expected = concat!(
            "{\n",
            "  \"id\": \"figX\",\n",
            "  \"series\": [\n",
            "    {\n",
            "      \"label\": \"SRW\",\n",
            "      \"x\": [20.0, 40.0]\n",
            "    },\n",
            "    {\n",
            "      \"label\": \"CNRW\",\n",
            "      \"x\": []\n",
            "    }\n",
            "  ],\n",
            "  \"notes\": [\"a\", \"b\"]\n",
            "}",
        );
        assert_eq!(v.to_pretty(), expected);
    }

    #[test]
    fn pretty_roundtrip() {
        let v = sample();
        assert_eq!(Value::parse(&v.to_pretty()).unwrap(), v);
    }

    #[test]
    fn compact_roundtrip() {
        let v = sample();
        let compact = v.to_compact();
        assert!(!compact.contains('\n'));
        assert_eq!(Value::parse(&compact).unwrap(), v);
    }

    #[test]
    fn integers_are_exact() {
        for u in [0u64, 1, u64::MAX, u64::MAX - 1, 1 << 63] {
            let v = u.to_value();
            let back = Value::parse(&v.to_compact()).unwrap();
            assert_eq!(back.decode::<u64>().unwrap(), u);
        }
        for i in [-1i64, i64::MIN, -42] {
            let v = i.to_value();
            let back = Value::parse(&v.to_compact()).unwrap();
            assert_eq!(back.decode::<i64>().unwrap(), i);
        }
    }

    #[test]
    fn floats_always_read_back_as_floats() {
        // An integral float must not collapse into Uint on re-parse.
        let v = 20.0f64.to_value();
        let s = v.to_compact();
        assert_eq!(s, "20.0");
        assert_eq!(Value::parse(&s).unwrap(), Value::Num(20.0));
    }

    #[test]
    fn nonfinite_floats_use_string_forms() {
        let v = Value::arr(&[f64::INFINITY, f64::NEG_INFINITY, f64::NAN]);
        let s = v.to_compact();
        assert_eq!(s, "[\"inf\",\"-inf\",\"NaN\"]");
        let back = Value::parse(&s).unwrap().decode::<Vec<f64>>().unwrap();
        assert_eq!(back[0], f64::INFINITY);
        assert_eq!(back[1], f64::NEG_INFINITY);
        assert!(back[2].is_nan());
    }

    #[test]
    fn string_escapes_roundtrip() {
        let hostile = "quote \" slash \\ newline \n tab \t ctrl \u{1} unicode π Δ 🦀";
        let v = hostile.to_value();
        for text in [v.to_pretty(), v.to_compact()] {
            assert_eq!(Value::parse(&text).unwrap().as_str().unwrap(), hostile);
        }
    }

    #[test]
    fn keywords_parse() {
        assert_eq!(Value::parse("true").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse("false").unwrap(), Value::Bool(false));
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert!(Value::parse("nul").is_err());
        assert!(Value::parse("truex").is_err());
    }

    #[test]
    fn parse_errors_carry_byte_offsets() {
        let err = Value::parse("{\"a\": 1,}").unwrap_err();
        assert_eq!(err.offset, 8);
        assert!(err.to_string().contains("at byte 8"), "{err}");

        let err = Value::parse("[1, 2").unwrap_err();
        assert_eq!(err.offset, 5);
        assert_eq!(err.message, "unexpected end of input");

        let err = Value::parse("[1, 2] tail").unwrap_err();
        assert_eq!(err.message, "trailing input");
        assert_eq!(err.offset, 7);

        let err = Value::parse("[1, x]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.message.contains("bad number"));
    }

    #[test]
    fn field_and_decode_helpers() {
        let v = sample();
        assert_eq!(v.field("count").unwrap().decode::<u64>().unwrap(), 3);
        assert_eq!(v.field("offset").unwrap().decode::<i64>().unwrap(), -7);
        assert!(v.field("nope").unwrap_err().contains("missing field"));
        assert!(Value::Null
            .field("x")
            .unwrap_err()
            .contains("expected object"));
        assert_eq!(v.get("flag"), Some(&Value::Bool(true)));
        assert_eq!(
            v.field("missing").unwrap().decode::<Option<u64>>().unwrap(),
            None
        );
        assert_eq!(
            v.field("count").unwrap().decode::<Option<u64>>().unwrap(),
            Some(3)
        );
    }

    #[test]
    fn numeric_range_checks() {
        assert!(Value::Uint(1 << 40).decode::<u32>().is_err());
        assert!(Value::Uint(u64::MAX).decode::<i64>().is_err());
        assert!(Value::Int(-1).decode::<u64>().is_err());
        assert_eq!(Value::Int(-1).decode::<f64>().unwrap(), -1.0);
        assert_eq!(Value::Uint(7).decode::<f64>().unwrap(), 7.0);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Value::Obj(vec![]).to_pretty(), "{}");
        assert_eq!(Value::Arr(vec![]).to_pretty(), "[]");
        assert_eq!(Value::parse("{}").unwrap(), Value::Obj(vec![]));
        assert_eq!(Value::parse(" [ ] ").unwrap(), Value::Arr(vec![]));
    }
}
