//! Property tests: `parse ∘ write = id` on arbitrary canonical [`Value`]
//! trees, for both the pretty and the compact writer.
//!
//! Canonical form (see the crate docs): non-negative integers are `Uint`,
//! negative integers are `Int`, floats are finite `Num`. Non-finite floats
//! are excluded because they intentionally round-trip through their string
//! forms (`Num(inf)` parses back as `Str("inf")` — covered by unit tests).

use osn_serde::Value;
use proptest::prelude::*;
use rand::Rng;
use rand_chacha::ChaCha12Rng;

/// Generate an arbitrary canonical value tree, at most `depth` levels deep.
fn gen_value(rng: &mut ChaCha12Rng, depth: u32) -> Value {
    // At depth 0 only scalars; otherwise containers with ~1/3 probability.
    let variant = if depth == 0 {
        rng.gen_range(0..6)
    } else {
        rng.gen_range(0..9)
    };
    match variant {
        0 => Value::Null,
        1 => Value::Bool(rng.gen_range(0..2) == 1),
        2 => Value::Uint(rng.gen()),
        3 => Value::Int(-(rng.gen_range(1..=i64::MAX as u64) as i64)),
        4 => Value::Num(gen_finite_f64(rng)),
        5 => Value::Str(gen_string(rng)),
        6 | 7 => {
            let n = rng.gen_range(0..5);
            Value::Arr((0..n).map(|_| gen_value(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.gen_range(0..5);
            Value::Obj(
                (0..n)
                    .map(|_| (gen_string(rng), gen_value(rng, depth - 1)))
                    .collect(),
            )
        }
    }
}

fn gen_finite_f64(rng: &mut ChaCha12Rng) -> f64 {
    loop {
        let x = f64::from_bits(rng.gen());
        if x.is_finite() {
            return x;
        }
    }
}

fn gen_string(rng: &mut ChaCha12Rng) -> String {
    let n = rng.gen_range(0..12);
    (0..n)
        .map(|_| {
            // Mix ASCII (incl. escapes and controls) with multi-byte chars.
            match rng.gen_range(0..4) {
                0 => char::from(rng.gen_range(0u8..0x20)),
                1 => *['"', '\\', '/', 'π', 'Δ', '🦀', '\u{7f}', 'é']
                    .get(rng.gen_range(0..8usize))
                    .unwrap(),
                _ => char::from(rng.gen_range(0x20u8..0x7f)),
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn parse_write_is_identity(seed in 0u64..u64::MAX, depth in 0u32..4) {
        use rand::SeedableRng;
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let v = gen_value(&mut rng, depth);

        let pretty = v.to_pretty();
        let reparsed = Value::parse(&pretty)
            .map_err(|e| format!("pretty parse failed: {e}\n{pretty}"))?;
        prop_assert_eq!(&reparsed, &v, "pretty roundtrip\n{}", pretty);

        let compact = v.to_compact();
        let reparsed = Value::parse(&compact)
            .map_err(|e| format!("compact parse failed: {e}\n{compact}"))?;
        prop_assert_eq!(&reparsed, &v, "compact roundtrip\n{}", compact);

        // Writing the reparsed tree reproduces the bytes exactly.
        prop_assert_eq!(Value::parse(&pretty).unwrap().to_pretty(), pretty);
        prop_assert_eq!(Value::parse(&compact).unwrap().to_compact(), compact);
    }
}
