//! Job descriptions: what one tenant asks the server to estimate, and how.
//!
//! A [`JobSpec`] is pure data — algorithm, estimand, fleet shape, seed,
//! arrival time — so it serializes losslessly into a server snapshot and
//! reconstructs the exact same [`osn_walks::WalkOrchestrator`] run on
//! resume. The running state of an admitted job lives in a
//! [`osn_walks::CoalescedWalkRun`], which carries its own snapshot format.

use std::sync::Arc;

use osn_estimate::RatioEstimator;
use osn_graph::attributes::AttributedGraph;
use osn_graph::{CsrGraph, NodeId};
use osn_serde::Value;
use osn_walks::{
    ByDegree, Cnrw, Gnrw, HistoryBackend, Mhrw, NbCnrw, NbSrw, NodeCnrw, RandomWalk, Srw,
    WalkOrchestrator,
};

/// The walk algorithm a job runs — the serializable counterpart of the
/// `RandomWalk` implementors in `osn-walks`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// Simple random walk.
    Srw,
    /// Metropolis-Hastings random walk.
    Mhrw,
    /// Non-backtracking simple random walk.
    NbSrw,
    /// Circulated neighbors random walk (per-edge circulation).
    Cnrw,
    /// Node-level CNRW variant (per-node circulation).
    NodeCnrw,
    /// Non-backtracking CNRW.
    NbCnrw,
    /// GroupBy neighbors random walk, grouped by log2 degree.
    GnrwByDegree,
}

impl Algorithm {
    /// Every algorithm, in label order — the traffic generator cycles
    /// through these to mix job shapes.
    pub const ALL: [Algorithm; 7] = [
        Algorithm::Srw,
        Algorithm::Mhrw,
        Algorithm::NbSrw,
        Algorithm::Cnrw,
        Algorithm::NodeCnrw,
        Algorithm::NbCnrw,
        Algorithm::GnrwByDegree,
    ];

    /// Stable lowercase label used in snapshots and reports.
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::Srw => "srw",
            Algorithm::Mhrw => "mhrw",
            Algorithm::NbSrw => "nb-srw",
            Algorithm::Cnrw => "cnrw",
            Algorithm::NodeCnrw => "node-cnrw",
            Algorithm::NbCnrw => "nb-cnrw",
            Algorithm::GnrwByDegree => "gnrw-by-degree",
        }
    }

    /// Parse a [`Self::label`] back.
    ///
    /// # Errors
    /// On an unknown label.
    pub fn from_label(label: &str) -> Result<Self, String> {
        Algorithm::ALL
            .into_iter()
            .find(|a| a.label() == label)
            .ok_or_else(|| format!("unknown algorithm `{label}`"))
    }

    /// Instantiate a walker at `start` on `backend`.
    pub fn make(self, start: NodeId, backend: HistoryBackend) -> Box<dyn RandomWalk + Send> {
        match self {
            Algorithm::Srw => Box::new(Srw::new(start)),
            Algorithm::Mhrw => Box::new(Mhrw::new(start)),
            Algorithm::NbSrw => Box::new(NbSrw::new(start)),
            Algorithm::Cnrw => Box::new(Cnrw::with_backend(start, backend)),
            Algorithm::NodeCnrw => Box::new(NodeCnrw::with_backend(start, backend)),
            Algorithm::NbCnrw => Box::new(NbCnrw::with_backend(start, backend)),
            Algorithm::GnrwByDegree => Box::new(Gnrw::with_backend(
                start,
                Box::new(ByDegree::log2()),
                backend,
            )),
        }
    }
}

/// What a job estimates from its walk samples.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Estimand {
    /// The network's average degree (the paper's headline aggregate),
    /// read as `count / Σ 1/k` from the ratio estimator.
    AverageDegree,
    /// The population mean of the node index — a synthetic target whose
    /// ground truth `(n-1)/2` is exact, handy for NRMSE sweeps.
    MeanNodeIndex,
}

impl Estimand {
    /// Stable lowercase label used in snapshots and reports.
    pub fn label(self) -> &'static str {
        match self {
            Estimand::AverageDegree => "average-degree",
            Estimand::MeanNodeIndex => "mean-node-index",
        }
    }

    /// Parse a [`Self::label`] back.
    ///
    /// # Errors
    /// On an unknown label.
    pub fn from_label(label: &str) -> Result<Self, String> {
        match label {
            "average-degree" => Ok(Estimand::AverageDegree),
            "mean-node-index" => Ok(Estimand::MeanNodeIndex),
            other => Err(format!("unknown estimand `{other}`")),
        }
    }

    /// The per-node value function the orchestrator samples. Captures a
    /// shared handle to the snapshot, so the server can lend its endpoint
    /// mutably while jobs evaluate node values.
    pub fn value_fn(self, network: &Arc<AttributedGraph>) -> Box<dyn Fn(NodeId) -> f64 + Send> {
        let g = Arc::clone(network);
        match self {
            Estimand::AverageDegree => Box::new(move |v| g.graph.degree(v) as f64),
            Estimand::MeanNodeIndex => Box::new(move |v| v.index() as f64),
        }
    }

    /// Read the final estimate off a job's merged ratio estimator.
    pub fn read(self, estimate: &RatioEstimator) -> Option<f64> {
        match self {
            Estimand::AverageDegree => estimate.average_degree(),
            Estimand::MeanNodeIndex => estimate.mean(),
        }
    }

    /// Ground truth over the full snapshot (the quantity a third party
    /// cannot see; experiments use it to score estimates).
    pub fn truth(self, graph: &CsrGraph) -> f64 {
        match self {
            Estimand::AverageDegree => graph.average_degree(),
            Estimand::MeanNodeIndex => (graph.node_count().saturating_sub(1)) as f64 / 2.0,
        }
    }
}

/// One tenant's request: run `walkers` seeded walkers of `algorithm` for up
/// to `max_steps` steps each and report the `estimand`.
///
/// Specs are pure data. The server derives the whole execution — the
/// [`WalkOrchestrator`], the per-walker RNG streams, the walker fleet —
/// from the spec, so persisting the spec (plus the run snapshot) is enough
/// to restore a killed server's jobs bit-identically.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Index of the owning tenant (from `SessionServer::add_tenant`).
    pub tenant: usize,
    /// The walk algorithm.
    pub algorithm: Algorithm,
    /// What to estimate.
    pub estimand: Estimand,
    /// Fleet size (clamped to at least 1).
    pub walkers: usize,
    /// Step cap per walker.
    pub max_steps: usize,
    /// Seed of the job's RNG streams (walker `i` draws from a
    /// SplitMix64-derived substream, as everywhere in the workspace).
    pub seed: u64,
    /// Start node of every walker in the fleet.
    pub start: NodeId,
    /// Circulation history backend.
    pub backend: HistoryBackend,
    /// Virtual-clock time at which the job becomes admissible, in seconds.
    pub arrival_secs: f64,
}

impl JobSpec {
    /// A job with library defaults: 2 walkers, 400 steps each, seed 0,
    /// average-degree estimand, default backend, admissible immediately.
    pub fn new(tenant: usize, algorithm: Algorithm, start: NodeId) -> Self {
        JobSpec {
            tenant,
            algorithm,
            estimand: Estimand::AverageDegree,
            walkers: 2,
            max_steps: 400,
            seed: 0,
            start,
            backend: HistoryBackend::default(),
            arrival_secs: 0.0,
        }
    }

    /// Set the fleet size (clamped to at least 1).
    #[must_use]
    pub fn with_walkers(mut self, walkers: usize) -> Self {
        self.walkers = walkers.max(1);
        self
    }

    /// Set the per-walker step cap.
    #[must_use]
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Seed the job's RNG streams.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set what the job estimates.
    #[must_use]
    pub fn with_estimand(mut self, estimand: Estimand) -> Self {
        self.estimand = estimand;
        self
    }

    /// Set the circulation history backend.
    #[must_use]
    pub fn with_backend(mut self, backend: HistoryBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Set the virtual arrival time.
    #[must_use]
    pub fn with_arrival(mut self, secs: f64) -> Self {
        self.arrival_secs = secs.max(0.0);
        self
    }

    /// The orchestrator this spec compiles to.
    pub(crate) fn orchestrator(&self) -> WalkOrchestrator {
        WalkOrchestrator::new(self.walkers, self.max_steps, self.seed).with_backend(self.backend)
    }

    /// The fleet factory this spec compiles to.
    pub(crate) fn make_walker(
        &self,
    ) -> impl Fn(usize, HistoryBackend) -> Box<dyn RandomWalk + Send> {
        let algorithm = self.algorithm;
        let start = self.start;
        move |_i, backend| algorithm.make(start, backend)
    }

    pub(crate) fn to_value(&self) -> Value {
        Value::obj([
            ("tenant", Value::Uint(self.tenant as u64)),
            ("algorithm", Value::Str(self.algorithm.label().into())),
            ("estimand", Value::Str(self.estimand.label().into())),
            ("walkers", Value::Uint(self.walkers as u64)),
            ("max_steps", Value::Uint(self.max_steps as u64)),
            ("seed", Value::Uint(self.seed)),
            ("start", Value::Uint(u64::from(self.start.0))),
            ("backend", Value::Str(self.backend.label().into())),
            ("arrival_secs", Value::Num(self.arrival_secs)),
        ])
    }

    pub(crate) fn from_value(value: &Value) -> Result<Self, String> {
        let backend = match value.field("backend")?.as_str()? {
            "legacy" => HistoryBackend::Legacy,
            "arena" => HistoryBackend::Arena,
            other => return Err(format!("unknown history backend `{other}`")),
        };
        Ok(JobSpec {
            tenant: value.field("tenant")?.decode()?,
            algorithm: Algorithm::from_label(value.field("algorithm")?.as_str()?)?,
            estimand: Estimand::from_label(value.field("estimand")?.as_str()?)?,
            walkers: value.field("walkers")?.decode()?,
            max_steps: value.field("max_steps")?.decode()?,
            seed: value.field("seed")?.decode()?,
            start: NodeId(value.field("start")?.decode()?),
            backend,
            arrival_secs: value.field("arrival_secs")?.decode()?,
        })
    }
}

/// Where a job is in its lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Submitted; its virtual arrival time has not been reached or no
    /// scheduling slice has admitted it yet.
    Queued,
    /// Admitted: a live [`osn_walks::CoalescedWalkRun`] advances in
    /// scheduler-granted round slices.
    Running,
    /// Every walker stopped (step cap or budget); the result is final.
    Done,
    /// Refused at admission because the shared unique-query budget was
    /// already exhausted.
    Refused,
}

impl JobState {
    /// Stable lowercase label used in snapshots and reports.
    pub fn label(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Refused => "refused",
        }
    }

    pub(crate) fn from_label(label: &str) -> Result<Self, String> {
        match label {
            "queued" => Ok(JobState::Queued),
            "running" => Ok(JobState::Running),
            "done" => Ok(JobState::Done),
            "refused" => Ok(JobState::Refused),
            other => Err(format!("unknown job state `{other}`")),
        }
    }
}

/// The final outcome of a completed job.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JobResult {
    /// The estimate, read per the job's [`Estimand`]; `None` when the walk
    /// recorded no usable sample (e.g. refused before its first step).
    pub estimate: Option<f64>,
    /// Steps performed across the fleet.
    pub steps: usize,
    /// Scheduling rounds the run consumed.
    pub rounds: usize,
}

impl JobResult {
    pub(crate) fn to_value(self) -> Value {
        Value::obj([
            (
                "estimate",
                match self.estimate {
                    Some(e) => Value::Num(e),
                    None => Value::Null,
                },
            ),
            ("steps", Value::Uint(self.steps as u64)),
            ("rounds", Value::Uint(self.rounds as u64)),
        ])
    }

    pub(crate) fn from_value(value: &Value) -> Result<Self, String> {
        Ok(JobResult {
            estimate: match value.field("estimate")? {
                Value::Null => None,
                other => Some(other.decode()?),
            },
            steps: value.field("steps")?.decode()?,
            rounds: value.field("rounds")?.decode()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_labels_round_trip() {
        for a in Algorithm::ALL {
            assert_eq!(Algorithm::from_label(a.label()).unwrap(), a);
        }
        assert!(Algorithm::from_label("bogus").is_err());
    }

    #[test]
    fn estimand_labels_round_trip() {
        for e in [Estimand::AverageDegree, Estimand::MeanNodeIndex] {
            assert_eq!(Estimand::from_label(e.label()).unwrap(), e);
        }
        assert!(Estimand::from_label("bogus").is_err());
    }

    #[test]
    fn job_spec_round_trips() {
        let spec = JobSpec::new(3, Algorithm::GnrwByDegree, NodeId(17))
            .with_walkers(4)
            .with_max_steps(512)
            .with_seed(99)
            .with_estimand(Estimand::MeanNodeIndex)
            .with_backend(HistoryBackend::Legacy)
            .with_arrival(12.5);
        let back = JobSpec::from_value(&spec.to_value()).unwrap();
        assert_eq!(back.tenant, 3);
        assert_eq!(back.algorithm, Algorithm::GnrwByDegree);
        assert_eq!(back.estimand, Estimand::MeanNodeIndex);
        assert_eq!(back.walkers, 4);
        assert_eq!(back.max_steps, 512);
        assert_eq!(back.seed, 99);
        assert_eq!(back.start, NodeId(17));
        assert_eq!(back.backend, HistoryBackend::Legacy);
        assert_eq!(back.arrival_secs.to_bits(), 12.5f64.to_bits());
    }

    #[test]
    fn every_algorithm_instantiates() {
        for a in Algorithm::ALL {
            let w = a.make(NodeId(0), HistoryBackend::default());
            assert_eq!(w.current(), NodeId(0));
        }
    }
}
