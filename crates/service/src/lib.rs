//! # osn-service
//!
//! Sampling-as-a-service: a multi-tenant job server multiplexing many
//! estimation jobs over one shared, rate-limited OSN interface.
//!
//! A [`SessionServer`] owns a single [`osn_client::SimulatedBatchOsn`]
//! (cache, unique-query budget, token-bucket rate limit, virtual clock) and
//! runs many concurrent **jobs**, each a sliced
//! [`osn_walks::WalkOrchestrator`] run with its own walker fleet,
//! [`Algorithm`], [`Estimand`], and seed. A weighted fair-share scheduler
//! allocates the shared budget: every scheduling slice goes to the tenant
//! with the lowest charged-queries-to-weight ratio, so while tenants stay
//! backlogged their charged shares track their weights.
//!
//! Three properties define the design:
//!
//! * **Determinism** — tenant choice, job rotation, walker randomness, and
//!   endpoint failures are all pure functions of specs and seeds; a server
//!   run replays bit-identically.
//! * **Snapshot/resume** — [`SessionServer::snapshot`] serializes endpoint,
//!   tenants, scheduler cursors, and every mid-walk job through `osn-serde`;
//!   [`SessionServer::resume`] restores a killed server and every job
//!   continues bit-identically (pinned by this crate's property tests).
//! * **Shared-cache synergy** — all jobs ride one endpoint cache, so one
//!   tenant's paid fetches become other tenants' free cache hits; at a
//!   fixed shared budget the fleet beats the same jobs run sequentially.
//!
//! The [`traffic`] module generates seeded multi-tenant workloads (weighted
//! tenants, exponential arrivals, mixed job shapes) for soak tests and the
//! `fig_service` experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod job;
mod server;
pub mod traffic;

pub use job::{Algorithm, Estimand, JobResult, JobSpec, JobState};
pub use server::{ServerConfig, SessionServer, SliceEngine, TenantSpec, TenantStats};
pub use traffic::TrafficConfig;
