//! The multi-tenant job server: one shared batch endpoint, many concurrent
//! walk jobs, fair-share scheduling of the shared query budget.
//!
//! ## Scheduling model
//!
//! Time is the endpoint's [`osn_client::VirtualClock`]. The server advances
//! in **slices**: each slice admits every queued job whose arrival time has
//! passed, picks the tenant with the lowest charged-queries-to-weight ratio
//! (classic max-min weighted fair share over the cumulative charge), picks
//! that tenant's next running job round-robin, and grants it
//! [`ServerConfig::rounds_per_slice`] units of work against the shared
//! endpoint — coalesced scheduling rounds under the default
//! [`SliceEngine::Rounds`], reactor completion events under
//! [`SliceEngine::Reactor`]. Everything — tenant choice, job choice, walker
//! randomness, endpoint failures — is a deterministic function of specs and
//! seeds, so a server run replays bit-identically.
//!
//! ## Why sharing beats sequential
//!
//! All jobs ride **one** endpoint cache: when tenant B's walker lands on a
//! node tenant A already paid for, B's fetch is a cache hit and charges
//! nothing. At a fixed shared budget the fleet therefore takes more total
//! steps (and reaches lower aggregate error) than the same jobs run
//! sequentially against private caches — the `fig_service` experiment
//! measures exactly this.
//!
//! ## Snapshot / resume
//!
//! [`SessionServer::snapshot`] captures the endpoint state (cache
//! membership, budget, clock, rate bucket), every tenant's accounting,
//! every job (spec + lifecycle state + mid-walk run snapshot), and the
//! scheduler cursors, as one [`Value`]. [`SessionServer::resume`] restores
//! the lot into a freshly constructed endpoint and continues every job
//! mid-walk bit-identically.

use std::sync::Arc;

use osn_client::{BatchOsnClient, QueryStats, SimulatedBatchOsn};
use osn_graph::attributes::AttributedGraph;
use osn_graph::{EdgeMutation, NodeId};
use osn_serde::Value;
use osn_walks::orchestrator::OrchestratorReport;
use osn_walks::{CoalescedWalkRun, ReactorWalkRun};

use crate::job::{JobResult, JobSpec, JobState};

/// A registered tenant: a display name and a fair-share weight.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Display name (reports, snapshots).
    pub name: String,
    /// Fair-share weight; charged queries are allocated proportionally to
    /// it while tenants stay backlogged. Clamped positive at registration.
    pub weight: f64,
}

/// Per-tenant accounting, updated after every scheduling slice.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Unique queries charged to the shared budget by this tenant's jobs.
    pub charged: u64,
    /// Cache hits this tenant's jobs rode — neighbor lists some earlier
    /// fetch (possibly another tenant's) already paid for.
    pub cache_hits: u64,
    /// Walk steps taken across this tenant's jobs.
    pub steps: u64,
    /// Jobs that ran to completion.
    pub jobs_completed: u64,
    /// Jobs refused at admission (budget already exhausted).
    pub jobs_refused: u64,
}

impl TenantStats {
    fn to_value(self) -> Value {
        Value::obj([
            ("charged", Value::Uint(self.charged)),
            ("cache_hits", Value::Uint(self.cache_hits)),
            ("steps", Value::Uint(self.steps)),
            ("jobs_completed", Value::Uint(self.jobs_completed)),
            ("jobs_refused", Value::Uint(self.jobs_refused)),
        ])
    }

    fn from_value(value: &Value) -> Result<Self, String> {
        Ok(TenantStats {
            charged: value.field("charged")?.decode()?,
            cache_hits: value.field("cache_hits")?.decode()?,
            steps: value.field("steps")?.decode()?,
            jobs_completed: value.field("jobs_completed")?.decode()?,
            jobs_refused: value.field("jobs_refused")?.decode()?,
        })
    }
}

/// Which walk-run engine drives a job's scheduling slices.
///
/// Both engines funnel through the same [`osn_walks::WalkOrchestrator`]
/// step core and are bit-compatible where their schedules coincide; they
/// differ in how a slice's work is metered against the shared endpoint.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SliceEngine {
    /// Lockstep coalesced rounds ([`CoalescedWalkRun`]): every walker in a
    /// job steps once per round, one gather per round. The default, and
    /// the engine all pre-existing pinned snapshots were taken under.
    #[default]
    Rounds,
    /// Poll-driven reactor events ([`ReactorWalkRun`]): walkers park as
    /// state machines on in-flight batches and a slice grants completion
    /// *events* instead of rounds — see [`osn_walks::reactor`]. Scales to
    /// 10k+ walkers per job with O(active batches) slice memory.
    Reactor,
}

/// Server-wide configuration (construction-time spec, not serialized).
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Work granted per slice: coalesced scheduling rounds under
    /// [`SliceEngine::Rounds`], completion events under
    /// [`SliceEngine::Reactor`]. Smaller slices track the fair shares
    /// tighter at more scheduling overhead.
    pub rounds_per_slice: usize,
    /// Engine newly admitted jobs run under. Resume keys each job off its
    /// own run snapshot, so a server restored with a different engine
    /// continues old runs unchanged and applies the new engine only to
    /// jobs admitted afterwards.
    pub engine: SliceEngine,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            rounds_per_slice: 8,
            engine: SliceEngine::Rounds,
        }
    }
}

impl ServerConfig {
    /// The default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the slice length (clamped to at least 1 round).
    #[must_use]
    pub fn with_rounds_per_slice(mut self, rounds: usize) -> Self {
        self.rounds_per_slice = rounds.max(1);
        self
    }

    /// Select the engine newly admitted jobs run under.
    #[must_use]
    pub fn with_engine(mut self, engine: SliceEngine) -> Self {
        self.engine = engine;
        self
    }
}

/// A job's in-progress walk, under whichever engine admitted it. Both
/// variants are boxed: run state is hundreds of bytes and `Job` vectors
/// should stay slim regardless of which engine a job runs under.
enum JobRun {
    Rounds(Box<CoalescedWalkRun>),
    Reactor(Box<ReactorWalkRun>),
}

impl JobRun {
    fn done(&self) -> bool {
        match self {
            JobRun::Rounds(run) => run.done(),
            JobRun::Reactor(run) => run.done(),
        }
    }

    fn steps_taken(&self) -> usize {
        match self {
            JobRun::Rounds(run) => run.steps_taken(),
            JobRun::Reactor(run) => run.steps_taken(),
        }
    }

    /// Grant one slice of work: `n` rounds or `n` completion events,
    /// depending on the engine the job was admitted under.
    fn run_slice<F>(&mut self, endpoint: &mut SimulatedBatchOsn, value: &F, n: usize)
    where
        F: Fn(osn_graph::NodeId) -> f64 + ?Sized,
    {
        match self {
            JobRun::Rounds(run) => {
                run.run_rounds(endpoint, value, n);
            }
            JobRun::Reactor(run) => {
                run.run_events(endpoint, value, n);
            }
        }
    }

    fn invalidate_nodes(&mut self, nodes: &[NodeId]) -> usize {
        match self {
            JobRun::Rounds(run) => run.invalidate_nodes(nodes),
            JobRun::Reactor(run) => run.invalidate_nodes(nodes),
        }
    }

    fn snapshot(&self) -> Value {
        match self {
            JobRun::Rounds(run) => run.snapshot(),
            JobRun::Reactor(run) => run.snapshot(),
        }
    }

    fn into_report(self, endpoint: &SimulatedBatchOsn) -> OrchestratorReport {
        match self {
            JobRun::Rounds(run) => run.into_report(endpoint),
            JobRun::Reactor(run) => run.into_report(endpoint),
        }
    }
}

/// One job's full server-side record.
struct Job {
    spec: JobSpec,
    state: JobState,
    run: Option<JobRun>,
    result: Option<JobResult>,
}

/// The sampling-as-a-service session server (see module docs).
pub struct SessionServer {
    endpoint: SimulatedBatchOsn,
    network: Arc<AttributedGraph>,
    config: ServerConfig,
    tenants: Vec<TenantSpec>,
    stats: Vec<TenantStats>,
    /// Per-tenant round-robin position: how many slices the tenant has been
    /// granted, used to rotate across its running jobs.
    cursors: Vec<u64>,
    jobs: Vec<Job>,
}

impl SessionServer {
    /// Stand up a server over a shared batch endpoint.
    pub fn new(endpoint: SimulatedBatchOsn, config: ServerConfig) -> Self {
        let network = endpoint.inner().network_shared();
        SessionServer {
            endpoint,
            network,
            config,
            tenants: Vec::new(),
            stats: Vec::new(),
            cursors: Vec::new(),
            jobs: Vec::new(),
        }
    }

    /// Register a tenant; returns its index for [`JobSpec::tenant`].
    pub fn add_tenant(&mut self, name: impl Into<String>, weight: f64) -> usize {
        self.tenants.push(TenantSpec {
            name: name.into(),
            weight: if weight > 0.0 { weight } else { 1.0 },
        });
        self.stats.push(TenantStats::default());
        self.cursors.push(0);
        self.tenants.len() - 1
    }

    /// Submit a job; returns its id.
    ///
    /// # Errors
    /// When the spec names an unregistered tenant or a start node outside
    /// the snapshot.
    pub fn submit(&mut self, spec: JobSpec) -> Result<usize, String> {
        if spec.tenant >= self.tenants.len() {
            return Err(format!(
                "job names tenant {} but only {} are registered",
                spec.tenant,
                self.tenants.len()
            ));
        }
        let n = self.network.graph.node_count();
        if spec.start.index() >= n {
            return Err(format!(
                "start node {} outside the {n}-node snapshot",
                spec.start
            ));
        }
        self.jobs.push(Job {
            spec,
            state: JobState::Queued,
            run: None,
            result: None,
        });
        Ok(self.jobs.len() - 1)
    }

    /// The registered tenants, in registration order.
    pub fn tenants(&self) -> &[TenantSpec] {
        &self.tenants
    }

    /// Accounting for tenant `t`.
    pub fn tenant_stats(&self, t: usize) -> TenantStats {
        self.stats[t]
    }

    /// Lifecycle state of job `id`.
    pub fn job_state(&self, id: usize) -> JobState {
        self.jobs[id].state
    }

    /// The spec job `id` was submitted with.
    pub fn job_spec(&self, id: usize) -> &JobSpec {
        &self.jobs[id].spec
    }

    /// Result of job `id`; `None` until it completes.
    pub fn job_result(&self, id: usize) -> Option<JobResult> {
        self.jobs[id].result
    }

    /// Number of submitted jobs.
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// The shared snapshot all jobs sample.
    pub fn network(&self) -> &Arc<AttributedGraph> {
        &self.network
    }

    /// Interface-side accounting of the shared endpoint.
    pub fn endpoint_stats(&self) -> QueryStats {
        self.endpoint.stats()
    }

    /// Remaining shared unique-query budget; `None` means unlimited.
    pub fn remaining_budget(&self) -> Option<u64> {
        self.endpoint.remaining_budget()
    }

    /// Virtual seconds elapsed on the shared endpoint's clock.
    pub fn elapsed_secs(&self) -> f64 {
        self.endpoint.clock().elapsed_secs()
    }

    /// Apply edge mutations to the shared endpoint's delta overlay and
    /// invalidate every live job's walkers: each effective mutation
    /// evicts both endpoints from the dispatcher caches and drops the
    /// touched nodes' circulation state, so every job's next visit
    /// re-fetches — and re-charges — the post-mutation neighbor list.
    /// Call between scheduling slices (the endpoint is quiescent there);
    /// the mutation log rides the server snapshot, so a killed
    /// mid-schedule server resumes over the identical mutated graph.
    /// Returns the nodes whose neighbor lists actually changed.
    pub fn apply_mutations(&mut self, ms: &[EdgeMutation]) -> Vec<NodeId> {
        let touched = self.endpoint.apply_mutations(ms);
        if !touched.is_empty() {
            for job in &mut self.jobs {
                if let Some(run) = &mut job.run {
                    run.invalidate_nodes(&touched);
                }
            }
        }
        touched
    }

    /// Whether every job has settled (done or refused).
    pub fn done(&self) -> bool {
        self.jobs
            .iter()
            .all(|j| matches!(j.state, JobState::Done | JobState::Refused))
    }

    /// Admit every queued job whose arrival time has passed, in submission
    /// order. Jobs arriving after the shared budget is exhausted are
    /// refused; the rest start a coalesced run.
    fn admit_due(&mut self) {
        let now = self.endpoint.clock().elapsed_secs();
        let exhausted = self.endpoint.remaining_budget() == Some(0);
        for job in &mut self.jobs {
            if job.state != JobState::Queued || job.spec.arrival_secs > now {
                continue;
            }
            if exhausted {
                job.state = JobState::Refused;
                self.stats[job.spec.tenant].jobs_refused += 1;
            } else {
                let orch = job.spec.orchestrator();
                job.run = Some(match self.config.engine {
                    SliceEngine::Rounds => {
                        JobRun::Rounds(Box::new(orch.start_coalesced(job.spec.make_walker())))
                    }
                    SliceEngine::Reactor => {
                        JobRun::Reactor(Box::new(orch.start_reactor(job.spec.make_walker())))
                    }
                });
                job.state = JobState::Running;
            }
        }
    }

    /// The runnable tenant with the lowest charged/weight ratio (weighted
    /// max-min fair share); ties break toward the lower index.
    fn pick_tenant(&self) -> Option<usize> {
        (0..self.tenants.len())
            .filter(|&t| {
                self.jobs
                    .iter()
                    .any(|j| j.spec.tenant == t && j.state == JobState::Running)
            })
            .min_by(|&a, &b| {
                let fa = self.stats[a].charged as f64 / self.tenants[a].weight;
                let fb = self.stats[b].charged as f64 / self.tenants[b].weight;
                fa.total_cmp(&fb)
            })
    }

    /// Of tenant `t`'s running jobs, the one its round-robin cursor points
    /// at this slice.
    fn pick_job(&mut self, t: usize) -> usize {
        let running: Vec<usize> = self
            .jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| j.spec.tenant == t && j.state == JobState::Running)
            .map(|(id, _)| id)
            .collect();
        let id = running[(self.cursors[t] % running.len() as u64) as usize];
        self.cursors[t] += 1;
        id
    }

    /// Run one scheduling slice. Returns `false` once every job has
    /// settled and no future arrivals remain — the server is done.
    pub fn step(&mut self) -> bool {
        self.admit_due();
        let Some(t) = self.pick_tenant() else {
            // Nothing runnable. If arrivals lie in the future, jump the
            // virtual clock to the next one; otherwise we are done.
            let next = self
                .jobs
                .iter()
                .filter(|j| j.state == JobState::Queued)
                .map(|j| j.spec.arrival_secs)
                .min_by(f64::total_cmp);
            let Some(next) = next else {
                return false;
            };
            self.endpoint.advance_clock_to(next);
            return true;
        };
        let id = self.pick_job(t);

        let before = self.endpoint.stats();
        let job = &mut self.jobs[id];
        let run = job.run.as_mut().expect("running job has a live run");
        let steps_before = run.steps_taken();
        let value = job.spec.estimand.value_fn(&self.network);
        run.run_slice(&mut self.endpoint, &*value, self.config.rounds_per_slice);
        let after = self.endpoint.stats();

        let stats = &mut self.stats[t];
        stats.charged += after.unique - before.unique;
        stats.cache_hits += after.cache_hits - before.cache_hits;
        stats.steps += (run.steps_taken() - steps_before) as u64;

        if run.done() {
            let run = job.run.take().expect("checked above");
            let report = run.into_report(&self.endpoint);
            job.result = Some(JobResult {
                estimate: job.spec.estimand.read(&report.estimate),
                steps: report.trace.total_steps(),
                rounds: report.rounds,
            });
            job.state = JobState::Done;
            stats.jobs_completed += 1;
        }
        true
    }

    /// Drive scheduling slices until every job settles.
    pub fn run_to_completion(&mut self) {
        while self.step() {}
    }

    /// Serialize the whole server — endpoint, tenants, jobs (mid-walk runs
    /// included), scheduler cursors — as one [`Value`].
    ///
    /// # Errors
    /// When the endpoint has requests in flight (cannot happen between
    /// slices; see [`SimulatedBatchOsn::export_state`]).
    pub fn snapshot(&self) -> Result<Value, String> {
        let tenants: Vec<Value> = self
            .tenants
            .iter()
            .zip(&self.stats)
            .map(|(spec, stats)| {
                Value::obj([
                    ("name", Value::Str(spec.name.clone())),
                    ("weight", Value::Num(spec.weight)),
                    ("stats", stats.to_value()),
                ])
            })
            .collect();
        let jobs: Vec<Value> = self
            .jobs
            .iter()
            .map(|job| {
                let mut fields = vec![
                    ("spec", job.spec.to_value()),
                    ("state", Value::Str(job.state.label().into())),
                ];
                if let Some(run) = &job.run {
                    fields.push(("run", run.snapshot()));
                }
                if let Some(result) = job.result {
                    fields.push(("result", result.to_value()));
                }
                Value::obj(fields)
            })
            .collect();
        Ok(Value::obj([
            ("kind", Value::Str("session-server".into())),
            ("endpoint", self.endpoint.export_state()?),
            ("tenants", Value::Arr(tenants)),
            (
                "cursors",
                Value::Arr(self.cursors.iter().map(|&c| Value::Uint(c)).collect()),
            ),
            ("jobs", Value::Arr(jobs)),
        ]))
    }

    /// Restore a snapshot into a freshly constructed endpoint (same graph
    /// snapshot, [`osn_client::BatchConfig`], and budget shape as the
    /// exporting server's). Every mid-walk job resumes bit-identically.
    ///
    /// # Errors
    /// On a malformed snapshot or any spec mismatch between the snapshot
    /// and the provided endpoint.
    pub fn resume(
        mut endpoint: SimulatedBatchOsn,
        config: ServerConfig,
        state: &Value,
    ) -> Result<Self, String> {
        let kind = state.field("kind")?.as_str()?;
        if kind != "session-server" {
            return Err(format!("expected a session-server snapshot, got `{kind}`"));
        }
        endpoint.import_state(state.field("endpoint")?)?;

        let mut tenants = Vec::new();
        let mut stats = Vec::new();
        for tv in state.field("tenants")?.as_array()? {
            tenants.push(TenantSpec {
                name: tv.field("name")?.as_str()?.to_string(),
                weight: tv.field("weight")?.decode()?,
            });
            stats.push(TenantStats::from_value(tv.field("stats")?)?);
        }
        let cursors: Vec<u64> = state
            .field("cursors")?
            .as_array()?
            .iter()
            .map(Value::decode)
            .collect::<Result<_, _>>()?;
        if cursors.len() != tenants.len() {
            return Err(format!(
                "{} cursors for {} tenants",
                cursors.len(),
                tenants.len()
            ));
        }

        let mut jobs = Vec::new();
        for (id, jv) in state.field("jobs")?.as_array()?.iter().enumerate() {
            let spec =
                JobSpec::from_value(jv.field("spec")?).map_err(|e| format!("job {id}: {e}"))?;
            if spec.tenant >= tenants.len() {
                return Err(format!("job {id} names unknown tenant {}", spec.tenant));
            }
            let job_state = JobState::from_label(jv.field("state")?.as_str()?)
                .map_err(|e| format!("job {id}: {e}"))?;
            let run = match job_state {
                JobState::Running => {
                    // Each run snapshot names its own engine: a server
                    // resumed under a different `config.engine` continues
                    // old runs with the engine that started them.
                    let rv = jv.field("run")?;
                    let run = match rv.field("kind")?.as_str()? {
                        "reactor" => JobRun::Reactor(Box::new(
                            spec.orchestrator()
                                .resume_reactor(rv, spec.make_walker())
                                .map_err(|e| format!("job {id}: {e}"))?,
                        )),
                        _ => JobRun::Rounds(Box::new(
                            spec.orchestrator()
                                .resume_coalesced(rv, spec.make_walker())
                                .map_err(|e| format!("job {id}: {e}"))?,
                        )),
                    };
                    Some(run)
                }
                _ => None,
            };
            let result = match job_state {
                JobState::Done => Some(
                    JobResult::from_value(jv.field("result")?)
                        .map_err(|e| format!("job {id}: {e}"))?,
                ),
                _ => None,
            };
            jobs.push(Job {
                spec,
                state: job_state,
                run,
                result,
            });
        }

        let network = endpoint.inner().network_shared();
        Ok(SessionServer {
            endpoint,
            network,
            config,
            tenants,
            stats,
            cursors,
            jobs,
        })
    }
}
