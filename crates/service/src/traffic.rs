//! Seeded closed-loop traffic generation: many simulated tenants with
//! randomized arrival processes and mixed job shapes.
//!
//! The generator is a pure function of its seed: tenant weights cycle
//! through [`WEIGHT_CYCLE`], per-tenant arrivals follow a seeded
//! exponential interarrival process on the server's virtual clock, and job
//! shapes (algorithm, fleet size, step cap, start node, estimand) are drawn
//! from one ChaCha12 stream. Two servers populated with the same
//! [`TrafficConfig`] therefore execute bit-identical workloads — the soak
//! test and the `fig_service` experiment both lean on this.

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha12Rng;

use osn_graph::NodeId;

use crate::job::{Algorithm, Estimand, JobSpec};
use crate::server::SessionServer;

/// Fair-share weights assigned round-robin to generated tenants.
pub const WEIGHT_CYCLE: [f64; 3] = [1.0, 2.0, 4.0];

/// Shape of a generated workload.
#[derive(Clone, Copy, Debug)]
pub struct TrafficConfig {
    /// Tenants to register.
    pub tenants: usize,
    /// Jobs submitted per tenant.
    pub jobs_per_tenant: usize,
    /// Seed of the generator stream.
    pub seed: u64,
    /// Mean of the exponential interarrival time between one tenant's
    /// consecutive jobs, in virtual seconds. `0.0` makes every job
    /// admissible immediately (a fully backlogged fleet).
    pub mean_interarrival_secs: f64,
    /// Upper bound of the per-walker step cap; generated jobs draw from
    /// `[max_steps/2, max_steps]`.
    pub max_steps: usize,
    /// Upper bound of the fleet size; generated jobs draw from
    /// `[1, max_walkers]`.
    pub max_walkers: usize,
}

impl TrafficConfig {
    /// A workload of `tenants` × `jobs_per_tenant` jobs with library
    /// defaults: seed 0, backlogged arrivals, up to 400 steps, up to 3
    /// walkers.
    pub fn new(tenants: usize, jobs_per_tenant: usize) -> Self {
        TrafficConfig {
            tenants: tenants.max(1),
            jobs_per_tenant: jobs_per_tenant.max(1),
            seed: 0,
            mean_interarrival_secs: 0.0,
            max_steps: 400,
            max_walkers: 3,
        }
    }

    /// Seed the generator stream.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the mean interarrival time (seconds of virtual time).
    #[must_use]
    pub fn with_mean_interarrival(mut self, secs: f64) -> Self {
        self.mean_interarrival_secs = secs.max(0.0);
        self
    }

    /// Set the step-cap upper bound (clamped to at least 2).
    #[must_use]
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps.max(2);
        self
    }

    /// Set the fleet-size upper bound (clamped to at least 1).
    #[must_use]
    pub fn with_max_walkers(mut self, max_walkers: usize) -> Self {
        self.max_walkers = max_walkers.max(1);
        self
    }
}

/// A uniform draw in `[0, 1)` from the top 53 bits of one RNG word.
fn unit(rng: &mut ChaCha12Rng) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// Register `config.tenants` weighted tenants and submit their seeded job
/// mix to `server`; returns the tenant indices.
///
/// # Panics
/// When the server's snapshot is empty (no nodes to start walks at).
pub fn populate(server: &mut SessionServer, config: &TrafficConfig) -> Vec<usize> {
    let n = server.network().graph.node_count();
    assert!(n > 0, "cannot generate traffic over an empty snapshot");
    let mut rng = ChaCha12Rng::seed_from_u64(config.seed);
    let mut tenant_ids = Vec::with_capacity(config.tenants);
    for t in 0..config.tenants {
        let weight = WEIGHT_CYCLE[t % WEIGHT_CYCLE.len()];
        tenant_ids.push(server.add_tenant(format!("tenant-{t:03}"), weight));
    }
    for &tenant in &tenant_ids {
        let mut arrival = 0.0f64;
        for _ in 0..config.jobs_per_tenant {
            if config.mean_interarrival_secs > 0.0 {
                // Exponential interarrival via inverse transform; 1 - u
                // keeps the logarithm finite.
                arrival += -(1.0 - unit(&mut rng)).ln() * config.mean_interarrival_secs;
            }
            let algorithm = Algorithm::ALL[(rng.next_u64() % Algorithm::ALL.len() as u64) as usize];
            let estimand = if rng.next_u64() % 4 == 0 {
                Estimand::MeanNodeIndex
            } else {
                Estimand::AverageDegree
            };
            let walkers = 1 + (rng.next_u64() % config.max_walkers as u64) as usize;
            let half = (config.max_steps / 2).max(1);
            let max_steps = half + (rng.next_u64() % (config.max_steps - half + 1) as u64) as usize;
            let start = NodeId((rng.next_u64() % n as u64) as u32);
            let spec = JobSpec::new(tenant, algorithm, start)
                .with_estimand(estimand)
                .with_walkers(walkers)
                .with_max_steps(max_steps)
                .with_seed(rng.next_u64())
                .with_arrival(arrival);
            server
                .submit(spec)
                .expect("generated specs always name valid tenants and nodes");
        }
    }
    tenant_ids
}
