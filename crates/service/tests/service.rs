//! Integration tests of the session server: weighted fair-share
//! proportionality under contention, admission refusals, cross-tenant
//! cache synergy, traffic-generator determinism, and kill-at-slice-k
//! snapshot/resume bit-identity.

use proptest::prelude::*;

use osn_client::{BatchConfig, RateLimitConfig, SimulatedBatchOsn, SimulatedOsn};
use osn_graph::{
    CsrGraph, DeltaOverlay, EdgeMutation, GraphBuilder, MutationOp, MutationSchedule, NodeId,
    ScheduleSpec,
};
use osn_serde::Value;
use osn_service::traffic::{populate, TrafficConfig};
use osn_service::{Algorithm, JobSpec, JobState, ServerConfig, SessionServer, SliceEngine};

/// A connected `n`-node graph: ring, chords, and a hub over the even
/// nodes — enough structure that walks spread and caches overlap.
fn test_graph(n: u32) -> CsrGraph {
    let mut b = GraphBuilder::new();
    for i in 0..n {
        b.push_edge(i, (i + 1) % n);
        b.push_edge(i, (i * 11 + 5) % n);
    }
    for i in (2..n).step_by(2) {
        b.push_edge(0, i);
    }
    b.build().unwrap()
}

#[test]
fn fair_share_tracks_weights_under_contention() {
    // Three backlogged tenants with weights 1:2:4 fight over a budget far
    // below their demand. The scheduler equalizes charged/weight, so each
    // tenant's share of charged queries must land within 10% relative of
    // its weight share.
    let weights = [1.0, 2.0, 4.0];
    let endpoint = SimulatedBatchOsn::configured(
        SimulatedOsn::from_graph(test_graph(2000)),
        BatchConfig::new(8).with_in_flight(4),
        Some(600),
    );
    let mut server = SessionServer::new(endpoint, ServerConfig::new().with_rounds_per_slice(4));
    for (t, &w) in weights.iter().enumerate() {
        assert_eq!(server.add_tenant(format!("w{w}"), w), t);
    }
    for t in 0..weights.len() {
        for j in 0..4 {
            let alg = Algorithm::ALL[(t * 4 + j) % Algorithm::ALL.len()];
            let start = NodeId(((t * 4 + j) * 97) as u32 % 2000);
            server
                .submit(
                    JobSpec::new(t, alg, start)
                        .with_walkers(2)
                        .with_max_steps(1500)
                        .with_seed((t * 4 + j) as u64 + 1),
                )
                .unwrap();
        }
    }
    server.run_to_completion();
    assert!(server.done());
    assert_eq!(server.remaining_budget(), Some(0), "budget must contend");

    let charged: Vec<u64> = (0..weights.len())
        .map(|t| server.tenant_stats(t).charged)
        .collect();
    let total: u64 = charged.iter().sum();
    let weight_total: f64 = weights.iter().sum();
    for (t, &w) in weights.iter().enumerate() {
        let share = charged[t] as f64 / total as f64;
        let target = w / weight_total;
        let rel = (share - target).abs() / target;
        assert!(
            rel <= 0.10,
            "tenant {t}: charged share {share:.3} vs weight share {target:.3} \
             (relative error {rel:.3})"
        );
        // Every tenant also rode the shared cache.
        assert!(server.tenant_stats(t).cache_hits > 0, "tenant {t}");
    }
}

#[test]
fn jobs_arriving_after_exhaustion_are_refused() {
    let endpoint = SimulatedBatchOsn::configured(
        SimulatedOsn::from_graph(test_graph(300)),
        BatchConfig::new(4),
        Some(25),
    );
    let mut server = SessionServer::new(endpoint, ServerConfig::new());
    let t0 = server.add_tenant("early", 1.0);
    let t1 = server.add_tenant("late", 1.0);
    let early = server
        .submit(
            JobSpec::new(t0, Algorithm::Cnrw, NodeId(0))
                .with_walkers(2)
                .with_max_steps(500)
                .with_seed(3),
        )
        .unwrap();
    // Arrives long after the early job has drained the budget.
    let late = server
        .submit(
            JobSpec::new(t1, Algorithm::Srw, NodeId(7))
                .with_seed(4)
                .with_arrival(1e6),
        )
        .unwrap();
    server.run_to_completion();
    assert_eq!(server.job_state(early), JobState::Done);
    assert_eq!(server.job_state(late), JobState::Refused);
    assert!(server.job_result(late).is_none());
    assert_eq!(server.tenant_stats(t1).jobs_refused, 1);
    assert_eq!(server.tenant_stats(t0).jobs_completed, 1);
    // The virtual clock jumped to the late arrival before refusing it.
    assert!(server.elapsed_secs() >= 1e6);
}

#[test]
fn submit_validates_tenant_and_start() {
    let endpoint = SimulatedBatchOsn::new(
        SimulatedOsn::from_graph(test_graph(50)),
        BatchConfig::new(4),
    );
    let mut server = SessionServer::new(endpoint, ServerConfig::new());
    let t = server.add_tenant("only", 1.0);
    assert!(server
        .submit(JobSpec::new(t + 1, Algorithm::Srw, NodeId(0)))
        .unwrap_err()
        .contains("tenant"));
    assert!(server
        .submit(JobSpec::new(t, Algorithm::Srw, NodeId(50)))
        .unwrap_err()
        .contains("outside"));
    assert!(server
        .submit(JobSpec::new(t, Algorithm::Srw, NodeId(49)))
        .is_ok());
}

/// The endpoint used by the traffic and resume tests: every realism knob
/// on — rate limit, heterogeneous latency, whole-request failures, per-id
/// partial drops — plus a shared budget.
fn soak_endpoint(n: u32, budget: Option<u64>) -> SimulatedBatchOsn {
    let config = BatchConfig::new(6)
        .with_in_flight(3)
        .with_rate_limit(RateLimitConfig {
            calls_per_window: 50,
            window_secs: 1.0,
        })
        .with_latency(0.002, 0.001)
        .with_per_id_latency(0.0005)
        .with_failure_every(11)
        .with_drop_node_every(13)
        .with_seed(5);
    SimulatedBatchOsn::configured(SimulatedOsn::from_graph(test_graph(n)), config, budget)
}

fn soak_server(seed: u64) -> SessionServer {
    let mut server = SessionServer::new(
        soak_endpoint(400, Some(900)),
        ServerConfig::new().with_rounds_per_slice(6),
    );
    let traffic = TrafficConfig::new(6, 3)
        .with_seed(seed)
        .with_mean_interarrival(0.05)
        .with_max_steps(250)
        .with_max_walkers(3);
    populate(&mut server, &traffic);
    server
}

#[test]
fn generated_workloads_replay_bit_identically() {
    let run = |seed| {
        let mut server = soak_server(seed);
        server.run_to_completion();
        server.snapshot().unwrap().to_pretty()
    };
    assert_eq!(run(42), run(42), "same seed, same final server state");
    assert_ne!(run(42), run(43), "different seeds, different workloads");
}

#[test]
fn traffic_exercises_per_id_drops_and_retries() {
    let mut server = soak_server(7);
    server.run_to_completion();
    let snap = server.snapshot().unwrap();
    let bs = snap
        .field("endpoint")
        .unwrap()
        .field("batch_stats")
        .unwrap();
    let node_drops: u64 = bs.field("node_drops").unwrap().decode().unwrap();
    let retries: u64 = bs.field("retries").unwrap().decode().unwrap();
    assert!(node_drops > 0, "per-id partial failures never fired");
    assert!(retries > 0, "whole-request failure injection never fired");
}

fn engine_server(engine: SliceEngine, budget: Option<u64>, seed: u64) -> SessionServer {
    let mut server = SessionServer::new(
        soak_endpoint(400, budget),
        ServerConfig::new()
            .with_rounds_per_slice(6)
            .with_engine(engine),
    );
    let traffic = TrafficConfig::new(5, 3)
        .with_seed(seed)
        .with_mean_interarrival(0.05)
        .with_max_steps(200)
        .with_max_walkers(3);
    populate(&mut server, &traffic);
    server
}

#[test]
fn reactor_engine_matches_rounds_estimates_without_budget() {
    // Absent a budget, traces are schedule-independent: the reactor engine
    // must reproduce the rounds engine's per-job estimates and step counts
    // bit-for-bit even though its slices are metered in completion events.
    let run = |engine| {
        let mut server = engine_server(engine, None, 11);
        server.run_to_completion();
        assert!(server.done());
        (0..server.job_count())
            .map(|id| {
                server
                    .job_result(id)
                    .map(|r| (r.estimate.map(f64::to_bits), r.steps))
            })
            .collect::<Vec<_>>()
    };
    let rounds = run(SliceEngine::Rounds);
    assert!(rounds.iter().any(Option::is_some), "no job completed");
    assert_eq!(rounds, run(SliceEngine::Reactor));
}

#[test]
fn reactor_engine_kill_mid_slice_resumes_bit_identically() {
    // Full-realism endpoint (rate limit, failures, drops, shared budget)
    // under the reactor engine: kill after k slices, persist through text,
    // resume, finish — byte-identical to the uninterrupted run. Once every
    // job has been admitted, the resumed server is configured with the
    // *Rounds* engine to prove resume keys each mid-walk job off its own
    // run snapshot, not off the server config (the config engine only
    // applies to jobs still queued at the kill).
    let mut reference = engine_server(SliceEngine::Reactor, Some(700), 21);
    reference.run_to_completion();
    let reference_final = reference.snapshot().unwrap().to_pretty();

    let mut saw_cross_engine_resume = false;
    for k in [1usize, 7, 23] {
        let mut killed = engine_server(SliceEngine::Reactor, Some(700), 21);
        for _ in 0..k {
            if !killed.step() {
                break;
            }
        }
        let snap = killed.snapshot().unwrap();
        let jobs = snap.field("jobs").unwrap().as_array().unwrap();
        // Mid-run jobs carry reactor-kind run snapshots.
        let reactor_runs = jobs
            .iter()
            .filter_map(|jv| jv.field("run").ok())
            .filter(|rv| rv.field("kind").unwrap().as_str().unwrap() == "reactor")
            .count();
        if k > 1 {
            assert!(reactor_runs > 0, "k={k}: no mid-walk reactor run captured");
        }
        let queued = jobs
            .iter()
            .filter(|jv| jv.field("state").unwrap().as_str().unwrap() == "queued")
            .count();
        let resume_engine = if queued == 0 {
            saw_cross_engine_resume = true;
            SliceEngine::Rounds
        } else {
            SliceEngine::Reactor
        };
        let text = snap.to_pretty();
        drop(killed);

        let parsed = Value::parse(&text).unwrap();
        let mut resumed = SessionServer::resume(
            soak_endpoint(400, Some(700)),
            ServerConfig::new()
                .with_rounds_per_slice(6)
                .with_engine(resume_engine),
            &parsed,
        )
        .unwrap();
        resumed.run_to_completion();
        assert_eq!(
            resumed.snapshot().unwrap().to_pretty(),
            reference_final,
            "k={k}"
        );
    }
    assert!(
        saw_cross_engine_resume,
        "no kill point had every job admitted; cross-engine resume untested"
    );
}

/// Seeded mutation batches for the overlay arm, keyed to the scheduling
/// slice they fire after. Deletes that would drop a node to degree zero
/// are filtered so no mid-walk job is ever stranded.
fn mutation_batches(n: u32, seed: u64) -> Vec<(usize, Vec<EdgeMutation>)> {
    let g = test_graph(n);
    let spec = ScheduleSpec::new(30, 2.0, seed).with_delete_fraction(0.4);
    let schedule = MutationSchedule::generate(&g, &spec);
    let mut overlay = DeltaOverlay::new();
    let (mut first, mut second) = (Vec::new(), Vec::new());
    for &m in schedule.events() {
        if m.op == MutationOp::Delete
            && (overlay.degree(&g, m.u) <= 1 || overlay.degree(&g, m.v) <= 1)
        {
            continue;
        }
        if overlay.apply(&g, m) {
            if m.at <= 1.0 {
                first.push(m);
            } else {
                second.push(m);
            }
        }
    }
    vec![(3, first), (9, second)]
}

/// Drive up to `max` scheduling slices, applying each batch due at the
/// global slice index it is keyed to. Returns the slice counter and
/// whether the server still has work.
fn drive(
    server: &mut SessionServer,
    batches: &[(usize, Vec<EdgeMutation>)],
    start: usize,
    max: usize,
) -> (usize, bool) {
    let mut slice = start;
    while slice - start < max {
        let more = server.step();
        slice += 1;
        for (at, batch) in batches {
            if *at == slice {
                server.apply_mutations(batch);
            }
        }
        if !more {
            return (slice, false);
        }
    }
    (slice, true)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The overlay arm of kill/resume: the graph mutates under the server
    /// at fixed slice boundaries (`SessionServer::apply_mutations` — the
    /// endpoint's delta overlay plus invalidation of every live job's
    /// walkers). Kill at an arbitrary slice — before, between, or after
    /// the mutation batches — persist through text, resume over a
    /// pristine endpoint (the mutation log rides the endpoint snapshot),
    /// replay the schedule's remainder, and the final server state must
    /// be byte-identical to the uninterrupted mutating run's.
    #[test]
    fn kill_mid_mutation_schedule_resumes_bit_identically(
        k in 0usize..60,
        seed in 0u64..30,
    ) {
        let batches = mutation_batches(400, seed ^ 0xE7);
        let mut reference = soak_server(seed);
        drive(&mut reference, &batches, 0, usize::MAX);
        let reference_final = reference.snapshot().unwrap().to_pretty();

        let mut killed = soak_server(seed);
        let (s, more) = drive(&mut killed, &batches, 0, k);
        let text = killed.snapshot().unwrap().to_pretty();
        drop(killed);

        let parsed = Value::parse(&text).map_err(|e| e.to_string())?;
        let mut resumed = SessionServer::resume(
            soak_endpoint(400, Some(900)),
            ServerConfig::new().with_rounds_per_slice(6),
            &parsed,
        )
        .map_err(|e| format!("resume failed: {e}"))?;
        if more {
            drive(&mut resumed, &batches, s, usize::MAX);
        }
        prop_assert_eq!(resumed.snapshot().unwrap().to_pretty(), reference_final);
    }

    /// Kill the server after `k` scheduling slices, persist the snapshot
    /// through the text form, resume into a freshly constructed endpoint,
    /// and finish: the final server state — every job's estimate, every
    /// tenant's accounting, the endpoint's clock and cache — must be
    /// byte-identical to the uninterrupted run's.
    #[test]
    fn kill_at_slice_k_resumes_bit_identically(k in 0usize..80, seed in 0u64..40) {
        let mut reference = soak_server(seed);
        reference.run_to_completion();
        let reference_final = reference.snapshot().unwrap().to_pretty();

        let mut killed = soak_server(seed);
        for _ in 0..k {
            if !killed.step() {
                break;
            }
        }
        let text = killed.snapshot().unwrap().to_pretty();
        drop(killed);

        let parsed = Value::parse(&text).map_err(|e| e.to_string())?;
        let mut resumed = SessionServer::resume(
            soak_endpoint(400, Some(900)),
            ServerConfig::new().with_rounds_per_slice(6),
            &parsed,
        )
        .map_err(|e| format!("resume failed: {e}"))?;
        resumed.run_to_completion();
        prop_assert_eq!(resumed.snapshot().unwrap().to_pretty(), reference_final);

        // Estimates are bit-identical, job by job.
        for id in 0..reference.job_count() {
            prop_assert_eq!(reference.job_state(id), resumed.job_state(id));
            let a = reference.job_result(id).map(|r| (r.estimate.map(f64::to_bits), r.steps, r.rounds));
            let b = resumed.job_result(id).map(|r| (r.estimate.map(f64::to_bits), r.steps, r.rounds));
            prop_assert_eq!(a, b, "job {}", id);
        }
        for t in 0..reference.tenants().len() {
            prop_assert_eq!(reference.tenant_stats(t), resumed.tenant_stats(t));
        }
    }
}
