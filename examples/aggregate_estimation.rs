//! Aggregate estimation with attribute-aligned GNRW grouping.
//!
//! ```text
//! cargo run --release --example aggregate_estimation
//! ```
//!
//! The paper's §4.1 design insight: if you know which aggregate your samples
//! will feed (here: the average `reviews_count` of all users of a Yelp-like
//! network), choose the GNRW grouping strategy that stratifies neighbors by
//! that same attribute. The walk then alternates across attribute strata
//! instead of lingering inside a community of similar users.

use std::sync::Arc;

use osn_sampling::prelude::*;

/// A labeled walker factory, boxed for heterogeneous comparison lists.
type WalkerFactory<'a> = (&'a str, Box<dyn Fn(NodeId) -> Box<dyn RandomWalk>>);

fn main() {
    // Yelp-like network: heavy-tailed `reviews_count` correlated with
    // community structure (homophily).
    let dataset = osn_sampling::datasets::yelp_like(Scale::Test, 7);
    let network = Arc::new(dataset.network);
    let truth = network
        .attributes
        .population_mean("reviews_count")
        .expect("attribute exists");
    println!(
        "network: {} users, {} friendships",
        network.graph.node_count(),
        network.graph.edge_count()
    );
    println!("ground truth average reviews_count: {truth:.2}\n");

    let budget = 150u64;
    let trials = 30;
    println!("estimating with {budget} unique queries, {trials} trials each:\n");

    // Three strategies: plain SRW, GNRW grouped by an unrelated hash, and
    // GNRW grouped by the aggregated attribute itself.
    let strategies: Vec<WalkerFactory> = vec![
        (
            "SRW                      ",
            Box::new(|s| Box::new(Srw::new(s))),
        ),
        (
            "GNRW grouped by hash     ",
            Box::new(|s| Box::new(Gnrw::new(s, Box::new(ByHash::new(4))))),
        ),
        (
            "GNRW grouped by attribute",
            Box::new(|s| Box::new(Gnrw::new(s, Box::new(ByAttribute::new("reviews_count"))))),
        ),
    ];

    for (name, make) in &strategies {
        let mut total_err = 0.0;
        for t in 0..trials {
            let n = network.graph.node_count();
            let start = NodeId(((t as usize * 37) % n) as u32);
            let mut walker = make(start);
            let client = SimulatedOsn::new_shared(network.clone());
            let mut client = BudgetedClient::new(client, budget, n);
            let trace = WalkSession::new(WalkConfig::steps(500_000).with_seed(t as u64))
                .run(walker.as_mut(), &mut client);

            let mut est = RatioEstimator::new();
            for &v in trace.nodes() {
                let reviews = client
                    .peek_attribute(v, "reviews_count")
                    .expect("attribute visible via the interface");
                est.push(reviews, client.peek_degree(v));
            }
            if let Some(estimate) = est.mean() {
                total_err += (estimate - truth).abs() / truth;
            } else {
                total_err += 1.0;
            }
        }
        println!(
            "{name}  mean relative error: {:.4}",
            total_err / trials as f64
        );
    }

    println!("\nBoth GNRW variants beat SRW: stratified circulation spreads the");
    println!("walk across neighbor groups instead of lingering in one community.");
    println!("At this scale hash- and attribute-grouping are within noise of each");
    println!("other; the full Figure 9 sweep (`repro fig9`) runs the comparison");
    println!("with 1000 trials per point.");
}
