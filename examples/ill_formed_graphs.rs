//! History-aware walks on "ill-formed" low-conductance graphs.
//!
//! ```text
//! cargo run --release --example ill_formed_graphs
//! ```
//!
//! Barbell and clustered-clique graphs are the worst case for random-walk
//! burn-in: a memoryless walk gets trapped inside a dense cluster. The
//! paper's Theorem 3 explains why CNRW escapes faster — revisiting an edge
//! redirects the walk to untried neighbors. This example measures the
//! escape behaviour and the resulting estimation quality.

use std::sync::Arc;

use osn_sampling::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn mean_escape_steps<F>(make: F, bell: usize, trials: u64) -> f64
where
    F: Fn(NodeId) -> Box<dyn RandomWalk>,
{
    let dataset = osn_sampling::datasets::barbell_graph_sized(bell, bell);
    let network = Arc::new(dataset.network);
    let mut total = 0u64;
    for t in 0..trials {
        let mut client = SimulatedOsn::new_shared(network.clone());
        let mut rng = ChaCha12Rng::seed_from_u64(t);
        let mut walker = make(NodeId(0));
        let mut steps = 0u64;
        loop {
            steps += 1;
            let v = walker
                .step(&mut client, &mut rng)
                .expect("unbudgeted client");
            if v.index() >= bell || steps > 500_000 {
                break;
            }
        }
        total += steps;
    }
    total as f64 / trials as f64
}

/// A labeled walker factory, boxed for heterogeneous comparison lists.
type WalkerFactory<'a> = (&'a str, Box<dyn Fn(NodeId) -> Box<dyn RandomWalk>>);

fn main() {
    println!("== Barbell escape (Theorem 3) ==\n");
    println!("start in the left bell; count steps until the right bell is reached\n");
    println!(
        "{:>6} {:>12} {:>12} {:>9}",
        "|G1|", "SRW steps", "CNRW steps", "speedup"
    );
    for bell in [10usize, 20, 30] {
        let srw = mean_escape_steps(|s| Box::new(Srw::new(s)), bell, 300);
        let cnrw = mean_escape_steps(|s| Box::new(Cnrw::new(s)), bell, 300);
        println!("{bell:>6} {srw:>12.1} {cnrw:>12.1} {:>8.2}x", srw / cnrw);
    }

    println!("\n== Clustered graph estimation (Figure 10 setting) ==\n");
    let dataset = osn_sampling::datasets::clustered_graph();
    let network = Arc::new(dataset.network);
    let truth = network.graph.average_degree();
    println!("three cliques (10/30/50 nodes) chained by bridges; true avg degree {truth:.2}\n");

    let budget = 80u64;
    let trials = 60;
    let algorithms: Vec<WalkerFactory> = vec![
        ("SRW   ", Box::new(|s| Box::new(Srw::new(s)))),
        ("NB-SRW", Box::new(|s| Box::new(NbSrw::new(s)))),
        ("CNRW  ", Box::new(|s| Box::new(Cnrw::new(s)))),
        (
            "GNRW  ",
            Box::new(|s| Box::new(Gnrw::new(s, Box::new(ByDegree::new())))),
        ),
    ];
    for (name, make) in &algorithms {
        let mut total_err = 0.0;
        for t in 0..trials {
            let n = network.graph.node_count();
            let start = NodeId(((t * 7) % n as u64) as u32);
            let mut walker = make(start);
            let client = SimulatedOsn::new_shared(network.clone());
            let mut client = BudgetedClient::new(client, budget, n);
            let trace = WalkSession::new(WalkConfig::steps(200_000).with_seed(1000 + t))
                .run(walker.as_mut(), &mut client);
            let mut est = RatioEstimator::new();
            for &v in trace.nodes() {
                let k = client.peek_degree(v);
                est.push(k as f64, k);
            }
            total_err += est
                .average_degree()
                .map(|e| (e - truth).abs() / truth)
                .unwrap_or(1.0);
        }
        println!(
            "{name} mean relative error at {budget} queries: {:.4}",
            total_err / trials as f64
        );
    }
}
