//! Many concurrent walkers over one lock-striped shared cache.
//!
//! ```text
//! cargo run --release --example many_walkers
//! ```
//!
//! The paper's related work cites "many random walks are faster than one".
//! Under the restricted-access cost model walkers sharing one crawler share
//! its **cache**, so every node any walker queries is free for all of them
//! — coverage rises with the walker count at no extra query cost. This
//! example runs the walkers on real OS threads with [`MultiWalkRunner`]
//! against a [`SharedOsn`] whose cache is lock-striped (`fnv(node) % N`),
//! and prints the per-stripe contention the striping avoids.
//!
//! The example also shows the catch: on an ill-formed graph with a tiny
//! shared budget, each walker stays trapped near its start, and naively
//! *pooling* chains that disagree weights regions by walker count instead
//! of by the stationary distribution. The split-R̂ diagnostic across the
//! walker chains detects exactly this — R̂ far above 1 means the pooled
//! estimate cannot be trusted yet and the budget must grow (or the chains
//! be reweighted).

use std::sync::Arc;

use osn_sampling::estimate::diagnostics::split_rhat;
use osn_sampling::prelude::*;

fn main() {
    let dataset = osn_sampling::datasets::clustered_graph();
    let network = Arc::new(dataset.network);
    let n = network.graph.node_count();
    let truth = network.graph.average_degree();
    println!(
        "clustered graph: {} nodes, {} edges, true avg degree {truth:.2}",
        n,
        network.graph.edge_count()
    );

    let budget = 70u64;
    let stripes = 16;
    println!("shared budget: {budget} unique queries, {stripes} cache stripes\n");
    println!(
        "{:>8} {:>10} {:>12} {:>10} {:>11} {:>10}",
        "walkers", "coverage", "rel. error", "split-R^", "cache hits", "contended"
    );

    for k in [1usize, 2, 4, 8] {
        let client = SharedOsn::configured(
            SimulatedOsn::new_shared(network.clone()),
            stripes,
            Some(budget),
        );
        let graph = &network.graph;
        let report = MultiWalkRunner::new(k, 4_000, 99).run(
            &client,
            |i, backend| {
                // Spread starts across the clusters.
                let start = NodeId(((i * 31) % n) as u32);
                Box::new(Cnrw::with_backend(start, backend)) as Box<dyn RandomWalk + Send>
            },
            |v| graph.degree(v) as f64,
        );

        // The runner already merged the per-walker ratio estimators.
        let err = report
            .estimate
            .average_degree()
            .map(|e| (e - truth).abs() / truth)
            .unwrap_or(1.0);
        let seen: std::collections::HashSet<NodeId> = report.trace.pooled().collect();
        // A shared budget is first-come-first-served: walkers scheduled late
        // may be refused after a handful of steps ("starved"). Diagnose the
        // chains long enough to say anything about.
        let chains: Vec<Vec<f64>> = report
            .trace
            .chains(|v| network.graph.degree(v) as f64)
            .into_iter()
            .filter(|c| c.len() >= 8)
            .collect();
        let starved = k - chains.len();
        let rhat = match split_rhat(&chains) {
            Some(r) if starved == 0 => format!("{r:.3}"),
            Some(r) => format!("{r:.3}*"),
            None if starved > 0 => "starved".to_string(),
            None => "n/a".to_string(),
        };
        let stats = report.trace.stats;
        println!(
            "{k:>8} {:>9}/{n} {err:>12.4} {rhat:>10} {:>11} {:>10}",
            seen.len(),
            stats.cache_hits,
            client.total_contention(),
        );
    }

    println!(
        "\nmore walkers cover more territory for the same unique-query\n\
         budget (shared striped cache), but pooling chains that have not\n\
         mixed weights clusters by walker count, not by the stationary\n\
         distribution — watch the error grow as R^ explodes. A shared\n\
         budget is also first-come-first-served: late walkers can starve\n\
         ('*' marks R^ computed without starved chains). The diagnostics,\n\
         not the coverage, tell you when pooling is safe."
    );
}
