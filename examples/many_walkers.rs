//! Many cooperating walkers over one rate-limited interface.
//!
//! ```text
//! cargo run --release --example many_walkers
//! ```
//!
//! The paper's related work cites "many random walks are faster than one".
//! Under the restricted-access cost model walkers sharing one crawler share
//! its **cache**, so every node any walker queries is free for all of them
//! — coverage rises with the walker count at no extra query cost.
//!
//! The example also shows the catch: on an ill-formed graph with a tiny
//! budget, each walker stays trapped near its start, and naively *pooling*
//! chains that disagree weights regions by walker count instead of by the
//! stationary distribution. The split-R̂ diagnostic across the walker
//! chains detects exactly this — R̂ far above 1 means the pooled estimate
//! cannot be trusted yet and the budget must grow (or the chains be
//! reweighted).

use std::sync::Arc;

use osn_sampling::estimate::diagnostics::split_rhat;
use osn_sampling::prelude::*;

fn main() {
    let dataset = osn_sampling::datasets::clustered_graph();
    let network = Arc::new(dataset.network);
    let n = network.graph.node_count();
    let truth = network.graph.average_degree();
    println!(
        "clustered graph: {} nodes, {} edges, true avg degree {truth:.2}",
        n,
        network.graph.edge_count()
    );

    let budget = 70u64;
    println!("shared budget: {budget} unique queries\n");
    println!(
        "{:>8} {:>10} {:>12} {:>10}",
        "walkers", "coverage", "rel. error", "split-R^"
    );

    for k in [1usize, 2, 4, 8] {
        let client = SimulatedOsn::new_shared(network.clone());
        let mut client = BudgetedClient::new(client, budget, n);
        let mut walkers: Vec<Box<dyn RandomWalk + Send>> = (0..k)
            .map(|i| {
                let start = NodeId(((i * 31) % n) as u32);
                Box::new(Cnrw::new(start)) as Box<dyn RandomWalk + Send>
            })
            .collect();
        let trace = MultiWalkSession::new(4_000, 99).run(&mut walkers, &mut client);

        let mut est = RatioEstimator::new();
        let mut seen = std::collections::HashSet::new();
        for v in trace.pooled() {
            let deg = network.graph.degree(v);
            est.push(deg as f64, deg);
            seen.insert(v);
        }
        let err = est
            .average_degree()
            .map(|e| (e - truth).abs() / truth)
            .unwrap_or(1.0);
        let chains = trace.chains(|v| network.graph.degree(v) as f64);
        let rhat = split_rhat(&chains)
            .map(|r| format!("{r:.3}"))
            .unwrap_or_else(|| "n/a".to_string());
        println!("{k:>8} {:>9}/{n} {err:>12.4} {rhat:>10}", seen.len());
    }

    println!(
        "\nmore walkers cover more territory for the same unique-query\n\
         budget (shared cache), but pooling chains that have not mixed\n\
         weights clusters by walker count, not by the stationary\n\
         distribution — watch the error grow as R^ explodes. The\n\
         diagnostic, not the coverage, tells you when pooling is safe."
    );
}
