//! Many concurrent walkers on the unified orchestrator, with and without
//! work-stealing restarts.
//!
//! ```text
//! cargo run --release --example many_walkers
//! ```
//!
//! The paper's related work cites "many random walks are faster than one".
//! Under the restricted-access cost model walkers sharing one crawler share
//! its **cache**, so every node any walker queries is free for all of them
//! — coverage rises with the walker count at no extra query cost. This
//! example drives the fleet through [`WalkOrchestrator`]: first on the
//! **threaded** backend over a lock-striped [`SharedOsn`] (one OS thread
//! per walker) with the [`Never`] policy — the classic PR-2 run — and then
//! on the deterministic **serial** backend under [`WorkStealing`], where
//! walkers publish the nodes they walk through into a [`SharedFrontier`]
//! and stalled or budget-refused walkers restart from territory the others
//! discovered.
//!
//! The first table shows the catch the diagnostics exist for: pooling
//! chains that disagree weights regions by walker count instead of by the
//! stationary distribution — split-R̂ far above 1 means the pooled estimate
//! cannot be trusted yet. The second table shows the orchestrator's answer:
//! work-stealing relocations keep every walker sampling productive,
//! already-paid-for territory, and the error at a fixed budget drops.

use std::sync::Arc;

use osn_sampling::estimate::diagnostics::split_rhat;
use osn_sampling::prelude::*;

fn main() {
    let dataset = osn_sampling::datasets::clustered_graph();
    let network = Arc::new(dataset.network);
    let n = network.graph.node_count();
    let truth = network.graph.average_degree();
    println!(
        "clustered graph: {} nodes, {} edges, true avg degree {truth:.2}",
        n,
        network.graph.edge_count()
    );

    let budget = 70u64;
    let stripes = 16;
    println!("shared budget: {budget} unique queries, {stripes} cache stripes\n");
    println!("— threaded backend, Never policy (the classic fleet) —");
    println!(
        "{:>8} {:>10} {:>12} {:>10} {:>11} {:>10}",
        "walkers", "coverage", "rel. error", "split-R^", "cache hits", "contended"
    );

    for k in [1usize, 2, 4, 8] {
        let client = SharedOsn::configured(
            SimulatedOsn::new_shared(network.clone()),
            stripes,
            Some(budget),
        );
        let graph = &network.graph;
        let report = WalkOrchestrator::new(k, 4_000, 99).run_threaded(
            &client,
            |i, backend| {
                // Spread starts across the clusters.
                let start = NodeId(((i * 31) % n) as u32);
                Box::new(Cnrw::with_backend(start, backend)) as Box<dyn RandomWalk + Send>
            },
            |v| graph.degree(v) as f64,
            &Never,
        );

        // The orchestrator already merged the per-walker ratio estimators.
        let err = report
            .estimate
            .average_degree()
            .map(|e| (e - truth).abs() / truth)
            .unwrap_or(1.0);
        let seen: std::collections::HashSet<NodeId> = report.trace.pooled().collect();
        // A shared budget is first-come-first-served: walkers scheduled late
        // may be refused after a handful of steps ("starved"). split_rhat
        // demands equal-length chains, so truncate to the shortest usable
        // chain explicitly — and say so when starved chains were dropped.
        let chains: Vec<Vec<f64>> = report
            .trace
            .chains(|v| network.graph.degree(v) as f64)
            .into_iter()
            .filter(|c| c.len() >= 8)
            .collect();
        let starved = k - chains.len();
        let min_len = chains.iter().map(Vec::len).min().unwrap_or(0);
        let truncated: Vec<Vec<f64>> = chains.iter().map(|c| c[..min_len].to_vec()).collect();
        let rhat = match split_rhat(&truncated) {
            Some(r) if starved == 0 => format!("{r:.3}"),
            Some(r) => format!("{r:.3}*"),
            None if starved > 0 => "starved".to_string(),
            None => "n/a".to_string(),
        };
        let stats = report.trace.stats;
        println!(
            "{k:>8} {:>9}/{n} {err:>12.4} {rhat:>10} {:>11} {:>10}",
            seen.len(),
            stats.cache_hits,
            client.total_contention(),
        );
    }

    println!(
        "\nmore walkers cover more territory for the same unique-query\n\
         budget (shared striped cache), but pooling chains that have not\n\
         mixed weights clusters by walker count, not by the stationary\n\
         distribution — watch the error grow as R^ explodes. A shared\n\
         budget is also first-come-first-served: late walkers can starve\n\
         ('*' marks R^ computed over truncated equal-length chains). The\n\
         diagnostics, not the coverage, tell you when pooling is safe.\n"
    );

    // The orchestrator's answer: the same fleets on the serial backend,
    // Never vs WorkStealing, all walkers clumped in the smallest clique
    // (the adversarial start the fig6_steal experiment sweeps).
    println!("— serial backend, clumped starts: Never vs WorkStealing —");
    println!(
        "{:>8} {:>14} {:>14} {:>13}",
        "walkers", "never NRMSE", "steal NRMSE", "relocations"
    );
    let trials = 16u64;
    for k in [2usize, 4, 8] {
        let run = |steal: bool| {
            let graph = &network.graph;
            let mut sq_sum = 0.0;
            let mut relocations = 0usize;
            for t in 0..trials {
                let mut client =
                    BudgetedClient::new(SimulatedOsn::new_shared(network.clone()), budget, n);
                let orch = WalkOrchestrator::new(k, 4_000, 99 + t);
                let steal_policy;
                let policy: &dyn RestartPolicy = if steal {
                    steal_policy = WorkStealing::new(1.1, 32, SharedFrontier::new());
                    &steal_policy
                } else {
                    &Never
                };
                let report = orch.run_serial(
                    &mut client,
                    |i, backend| {
                        Box::new(Cnrw::with_backend(NodeId((i % 10) as u32), backend))
                            as Box<dyn RandomWalk + Send>
                    },
                    |v| graph.degree(v) as f64,
                    policy,
                );
                let err = report
                    .estimate
                    .average_degree()
                    .map(|e| (e - truth) / truth)
                    .unwrap_or(1.0);
                sq_sum += err * err;
                relocations += report.restarts.len();
            }
            (
                (sq_sum / trials as f64).sqrt(),
                relocations / trials as usize,
            )
        };
        let (never_err, _) = run(false);
        let (steal_err, relocations) = run(true);
        println!("{k:>8} {never_err:>14.4} {steal_err:>14.4} {relocations:>13}");
    }

    println!(
        "\nwith every walker trapped in the 10-clique, the Never fleet\n\
         terminates (or circulates uselessly) once the budget is spent;\n\
         WorkStealing relocates exhausted and budget-refused walkers into\n\
         higher-degree territory other walkers published — same budget,\n\
         same seeds, lower error. `repro fig6steal` sweeps this properly."
    );
}
