//! Quickstart: estimate the average degree of a social network you can only
//! reach through a rate-limited neighbor-query interface.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The scenario mirrors the paper's motivation: a third party (sociologist,
//! economist) wants an aggregate over all users, but the platform only
//! answers "who are the neighbors of user X?" and throttles queries hard.
//! We compare the classic simple random walk (SRW) with the paper's
//! history-aware CNRW at the same unique-query budget.

use osn_sampling::prelude::*;

fn estimate_with(
    walker: &mut dyn RandomWalk,
    network: std::sync::Arc<osn_sampling::graph::attributes::AttributedGraph>,
    budget: u64,
    seed: u64,
) -> (f64, u64) {
    let n = network.graph.node_count();
    let client = SimulatedOsn::new_shared(network);
    let mut client = BudgetedClient::new(client, budget, n);
    let trace =
        WalkSession::new(WalkConfig::steps(1_000_000).with_seed(seed)).run(walker, &mut client);

    // Samples arrive with probability proportional to degree; the ratio
    // estimator reweights by 1/degree to recover the population mean.
    let mut est = RatioEstimator::new();
    for &v in trace.nodes() {
        let k = client.peek_degree(v);
        est.push(k as f64, k);
    }
    (est.average_degree().unwrap_or(f64::NAN), trace.stats.unique)
}

/// A labeled walker factory, boxed for heterogeneous comparison lists.
type WalkerFactory<'a> = (&'a str, Box<dyn Fn(NodeId) -> Box<dyn RandomWalk>>);

fn main() {
    // A 775-node Facebook-like social graph (same shape as the paper's
    // public benchmark snapshot).
    let dataset = osn_sampling::datasets::facebook_like(Scale::Default, 42);
    let network = std::sync::Arc::new(dataset.network);
    let truth = network.graph.average_degree();
    println!("ground truth average degree: {truth:.3}");
    println!(
        "graph: {} nodes, {} edges\n",
        network.graph.node_count(),
        network.graph.edge_count()
    );

    let budget = 200;
    let trials = 40;
    println!("budget: {budget} unique queries, averaged over {trials} trials\n");

    let algorithms: Vec<WalkerFactory> = vec![
        ("SRW ", Box::new(|s| Box::new(Srw::new(s)))),
        ("CNRW", Box::new(|s| Box::new(Cnrw::new(s)))),
    ];
    for (name, make) in &algorithms {
        let mut total_err = 0.0;
        for t in 0..trials {
            let start = NodeId((t * 13) % network.graph.node_count() as u32);
            let mut walker = make(start);
            let (estimate, _) = estimate_with(walker.as_mut(), network.clone(), budget, t as u64);
            total_err += (estimate - truth).abs() / truth;
        }
        println!(
            "{name}  mean relative error: {:.4}",
            total_err / trials as f64
        );
    }

    println!("\nCNRW is a drop-in replacement: same stationary distribution,");
    println!("same estimator, same budget — lower error.");
}
