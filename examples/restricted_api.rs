//! The restricted-access interface end to end: unique-query accounting,
//! caching, and the rate-limit virtual clock.
//!
//! ```text
//! cargo run --release --example restricted_api
//! ```
//!
//! The paper's cost model in action: only *unique* queries count (repeats
//! are served from a local cache), and real platforms throttle brutally —
//! Twitter's limit at the time was 15 calls per 15 minutes, i.e. one query
//! per minute. This example walks a graph behind a simulated Twitter-grade
//! rate limit and reports how long the crawl would have taken for real,
//! and how much of it the cache saved.

use osn_sampling::prelude::*;

fn main() {
    let dataset = osn_sampling::datasets::facebook_like(Scale::Default, 3);
    let network = dataset.network;
    println!(
        "network: {} users, {} edges",
        network.graph.node_count(),
        network.graph.edge_count()
    );

    // Wrap the simulated OSN in a Twitter-grade rate limiter.
    let inner = SimulatedOsn::new(network);
    let mut client = RateLimitedOsn::new(inner, RateLimitConfig::twitter());

    // Walk with CNRW for a fixed number of steps.
    let steps = 600;
    let mut walker = Cnrw::new(NodeId(0));
    let trace =
        WalkSession::new(WalkConfig::steps(steps).with_seed(11)).run(&mut walker, &mut client);

    let stats = trace.stats;
    println!(
        "\nwalk of {} steps issued {} neighbor queries:",
        trace.len(),
        stats.issued
    );
    println!(
        "  unique (charged against the rate limit): {}",
        stats.unique
    );
    println!(
        "  served from local cache (free):          {}",
        stats.cache_hits
    );
    println!("  cache hit rate: {:.1}%", 100.0 * stats.cache_hit_rate());

    let clock = client.clock();
    println!(
        "\nagainst the live platform this crawl would have taken {} (h:mm:ss)",
        clock.display()
    );
    println!(
        "at Twitter's 15-calls-per-15-minutes budget, every cached repeat\n\
         saves a full minute of wall-clock time — the reason the paper\n\
         counts only unique queries."
    );

    // Show the same walk with Yelp's (much looser) limit for contrast.
    let dataset = osn_sampling::datasets::facebook_like(Scale::Default, 3);
    let inner = SimulatedOsn::new(dataset.network);
    let mut client = RateLimitedOsn::new(inner, RateLimitConfig::yelp());
    let mut walker = Cnrw::new(NodeId(0));
    let _ = WalkSession::new(WalkConfig::steps(steps).with_seed(11)).run(&mut walker, &mut client);
    println!(
        "\nthe same walk under Yelp's 25k-calls/day limit: {}",
        client.clock().display()
    );
}
