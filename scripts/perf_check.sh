#!/usr/bin/env bash
# Quick walker-throughput regression check against the committed baseline.
#
# Re-measures the (graph, algorithm, history backend) steps/sec matrix in
# quick mode and diffs it against BENCH_walkers.json. Cells more than 15%
# below the baseline's best rep print a `::warning::` line (rendered as an
# annotation on GitHub Actions). GNRW is called out specifically: the
# plan-over-scratch speedup (plan-backed arena cell vs the per-step
# partition reference cell) is printed for every graph on every run, and
# warns when that within-run ratio falls below the committed baseline's —
# it is the machine-independent headline of the group-plan fast path.
# The check is NON-BLOCKING by design — CI
# runners are noisy shared machines — so this script always exits 0 when
# the measurement itself succeeds; regenerate the baseline on a quiet
# machine with:
#
#   cargo run --release -p osn-bench --bin repro -- perf --record BENCH_walkers.json
set -uo pipefail
cd "$(dirname "$0")/.."

if [[ ! -f BENCH_walkers.json ]]; then
  echo "::warning::perf: BENCH_walkers.json baseline missing; skipping check"
  exit 0
fi

cargo run --release -p osn-bench --bin repro -- perf --quick --baseline BENCH_walkers.json
