//! # osn-sampling
//!
//! A production-quality Rust implementation of **history-aware random walk
//! sampling of online social networks**, reproducing *"Leveraging History
//! for Faster Sampling of Online Social Networks"* (Zhuojie Zhou, Nan Zhang,
//! Gautam Das — VLDB 2015, arXiv:1505.00079).
//!
//! The headline algorithms are **CNRW** (Circulated Neighbors Random Walk)
//! and **GNRW** (GroupBy Neighbors Random Walk): drop-in replacements for
//! the simple random walk that sample each node's neighbors *without
//! replacement* (per incoming edge), provably keeping the SRW stationary
//! distribution `k_v / 2|E|` while reducing asymptotic variance — i.e. fewer
//! rate-limited API queries per unit of estimation accuracy.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! * [`graph`] (`osn-graph`) — CSR graph substrate, generators, analysis;
//! * [`serde`] (`osn-serde`) — the dependency-free JSON [`serde::Value`]
//!   tree with bit-exact float round-trips (the snapshot wire format);
//! * [`client`] (`osn-client`) — the simulated restricted OSN interface
//!   with unique-query accounting and rate-limit simulation;
//! * [`walks`] (`osn-walks`) — SRW, MHRW, NB-SRW, **CNRW**, **GNRW**,
//!   NB-CNRW, plus exact Markov-chain analysis;
//! * [`estimate`] (`osn-estimate`) — reweighted aggregate estimators, bias
//!   metrics, variance estimation, convergence diagnostics;
//! * [`datasets`] (`osn-datasets`) — calibrated stand-ins for the paper's
//!   evaluation datasets;
//! * [`service`] (`osn-service`) — sampling as a service: the multi-tenant
//!   [`service::SessionServer`] with weighted fair-share budget scheduling,
//!   whole-server snapshot/resume, and seeded traffic generation;
//! * [`experiments`] (`osn-experiments`) — the harness regenerating every
//!   table and figure of the paper's evaluation, plus the service figure.
//!
//! Beyond the paper, the workspace scales to **parallel multi-walker
//! sampling**: [`client::SharedOsn`] is a lock-striped shared cache
//! (stripe = `fnv(node) % N`, per-stripe hit/miss/contention counters, an
//! optional atomic global budget) and [`walks::MultiWalkRunner`] schedules K
//! seeded walkers over scoped threads with deterministic per-walker RNG
//! streams, merging their estimates through [`estimate::RatioEstimator`].
//! For **batched I/O** — real OSN APIs expose batch endpoints with bounded
//! in-flight windows and transient failures — [`client::SimulatedBatchOsn`]
//! models the endpoint (latency/jitter, deterministic failure injection,
//! bounded retry, budget charged once per unique node) and
//! [`walks::CoalescingDispatcher`] parks walker requests in a queue, dedups
//! ids across walkers, and fans them out in batches, with per-walker traces
//! bit-identical to serial replay.
//!
//! All three run modes execute on **one unified core**,
//! [`walks::WalkOrchestrator`]: serial, threaded, and coalesced backends
//! share the step loop, the per-walker RNG streams, and the stop
//! bookkeeping, parameterized by a [`walks::RestartPolicy`] —
//! [`walks::Never`] replays the classic runs bit-identically, while
//! [`walks::WorkStealing`] restarts stalled or budget-refused walkers from
//! a lock-striped [`walks::SharedFrontier`] of territory other walkers
//! discovered, triggered by an online windowed split-R̂
//! ([`estimate::WindowedSplitRhat`]). On top of all of it sits the
//! **service layer**: [`service::SessionServer`] multiplexes many tenants'
//! jobs over one shared endpoint under deterministic weighted fair-share
//! scheduling, and snapshots/resumes the entire mid-flight server
//! byte-identically through [`serde::Value`]. See `ARCHITECTURE.md` for the
//! paper-concept → code map, the backend × policy matrix, and the service
//! layer's scheduler and snapshot format.
//!
//! ## Quickstart
//!
//! ```
//! use osn_sampling::prelude::*;
//!
//! // A small social graph behind a restricted interface.
//! let network = osn_sampling::datasets::facebook_like(Scale::Test, 7).network;
//! let truth = network.graph.average_degree();
//! let n = network.graph.node_count();
//!
//! // Budget: 150 unique queries, as a third party would be limited.
//! let client = SimulatedOsn::new(network);
//! let mut client = BudgetedClient::new(client, 150, n);
//!
//! // CNRW is a drop-in replacement for SRW: same stationary distribution,
//! // faster convergence.
//! let mut walker = Cnrw::new(NodeId(0));
//! let trace = WalkSession::new(WalkConfig::steps(100_000).with_seed(1))
//!     .run(&mut walker, &mut client);
//!
//! // Correct the degree-proportional sampling bias while estimating.
//! let mut est = RatioEstimator::new();
//! for &v in trace.nodes() {
//!     let k = client.peek_degree(v);
//!     est.push(k as f64, k);
//! }
//! let estimate = est.average_degree().unwrap();
//! assert!((estimate - truth).abs() / truth < 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use osn_client as client;
pub use osn_datasets as datasets;
pub use osn_estimate as estimate;
pub use osn_experiments as experiments;
pub use osn_graph as graph;
pub use osn_serde as serde;
pub use osn_service as service;
pub use osn_walks as walks;

/// The most common imports in one place.
pub mod prelude {
    pub use osn_client::{
        BatchConfig, BatchOsnClient, BudgetedClient, OsnClient, RateLimitConfig, RateLimitedOsn,
        SharedOsn, SimulatedBatchOsn, SimulatedOsn, StripeStats,
    };
    pub use osn_datasets::{Dataset, Scale};
    pub use osn_estimate::{DeltaCorrectedEstimator, RatioEstimator, UniformMeanEstimator};
    pub use osn_graph::{
        AdjacencyRead, AdjacencySnapshot, CompactBuilder, CompactCsr, CsrGraph, DecodeCache,
        DeltaOverlay, DirectedCsr, EdgeMutation, GraphBuilder, MutationOp, MutationSchedule,
        NodeId, ScheduleSpec,
    };
    pub use osn_serde::Value;
    pub use osn_service::{
        Estimand, JobResult, JobSpec, JobState, ServerConfig, SessionServer, SliceEngine,
        TenantSpec, TenantStats, TrafficConfig,
    };
    pub use osn_walks::{
        ByAttribute, ByDegree, ByHash, Cnrw, CoalescedWalkRun, CoalescingDispatcher,
        FrontierSampler, Gnrw, GroupPlan, HistoryBackend, Mhrw, MultiWalkReport, MultiWalkRunner,
        MultiWalkSession, NbCnrw, NbSrw, Never, NodeCnrw, OrchestratorReport, PlanMode, RandomWalk,
        ReactorStats, ReactorWalkRun, RestartEvent, RestartPolicy, RestartReason, SerialWalkRun,
        SharedFrontier, Srw, WalkConfig, WalkOrchestrator, WalkSession, WalkerFsm, WorkStealing,
    };
}

// Keep the README honest: compile and run its `rust` code blocks (the
// quickstart included) as doctests of this crate, so the snippet cannot rot
// apart from the library. `cargo test --doc` exercises this; the CI `docs`
// job gates on it.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
pub struct ReadmeDoctests;
