//! Property tests for the batched client + coalescing dispatcher.
//!
//! The invariants pinned here are the contract of the batch subsystem:
//!
//! * **charged queries == unique nodes fetched**, for every graph, batch
//!   size, in-flight window, and walker count — batching reshapes request
//!   traffic, never the paper's §2.3 unique-query cost;
//! * the batched path is a **pure I/O transformation** of the walk: with
//!   one walker it replays the serial walk bit-identically, and with K
//!   walkers every per-walker trace (and the merged estimator) matches the
//!   threaded `MultiWalkRunner` exactly.

use proptest::prelude::*;

use std::collections::HashSet;
use std::sync::Arc;

use osn_sampling::graph::attributes::AttributedGraph;
use osn_sampling::graph::generators::erdos_renyi;
use osn_sampling::prelude::*;

/// Strategy: a connected random graph with 5..60 nodes (same recipe as
/// `tests/property_based.rs`).
fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (5usize..60, 0u64..1000).prop_map(|(n, seed)| {
        let p = (2.0 * (n as f64).ln() / n as f64).min(0.9);
        erdos_renyi(n, p, seed).expect("valid config")
    })
}

fn batched_report(
    network: &Arc<AttributedGraph>,
    k: usize,
    steps: usize,
    batch_size: usize,
    window: usize,
    seed: u64,
) -> (osn_sampling::walks::BatchDispatchReport, SimulatedBatchOsn) {
    let n = network.graph.node_count();
    let mut client = SimulatedBatchOsn::new(
        SimulatedOsn::new_shared(network.clone()),
        BatchConfig::new(batch_size).with_in_flight(window),
    );
    let report = MultiWalkRunner::new(k, steps, seed).run_batched(
        &mut client,
        |i, backend| {
            Box::new(Cnrw::with_backend(NodeId(((i * 13) % n) as u32), backend))
                as Box<dyn RandomWalk + Send>
        },
        |v| v.index() as f64,
    );
    (report, client)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn charged_queries_equal_unique_nodes_fetched(
        g in arb_graph(),
        seed in 0u64..300,
        k in 1usize..6,
        batch_size in 1usize..20,
        window in 1usize..5,
    ) {
        let network = Arc::new(AttributedGraph::bare(g));
        let n = network.graph.node_count();
        let (report, client) = batched_report(&network, k, 150, batch_size, window, seed);
        // The fetched set: each start (fetched for the first step) plus
        // every node a walker *departed from*. A walker's final position
        // is never fetched — no step follows it.
        let mut fetched: HashSet<u32> = (0..k).map(|i| ((i * 13) % n) as u32).collect();
        for trace in &report.trace.per_walker {
            fetched.extend(trace[..trace.len().saturating_sub(1)].iter().map(|v| v.0));
        }
        prop_assert_eq!(report.interface.unique, fetched.len() as u64);
        // Walker-side and interface-side agree on the charged cost, and the
        // interface never saw a node twice (the dispatcher cache absorbs
        // every revisit).
        prop_assert_eq!(report.trace.stats.unique, report.interface.unique);
        prop_assert_eq!(report.interface.cache_hits, 0);
        // Request accounting is conserved: every accepted id was delivered
        // exactly once (no failures were configured).
        prop_assert_eq!(client.batch_stats().submitted_ids, report.interface.issued);
    }

    #[test]
    fn one_walker_batched_is_bit_identical_to_serial_replay(
        g in arb_graph(),
        seed in 0u64..300,
        batch_size in 1usize..10,
    ) {
        use rand::SeedableRng;
        let network = Arc::new(AttributedGraph::bare(g));
        let runner = MultiWalkRunner::new(1, 200, seed);
        let (report, _) = batched_report(&network, 1, 200, batch_size, 2, seed);
        // Serial replay with the same derived RNG stream.
        let mut client = SimulatedOsn::new_shared(network.clone());
        let mut walker = Cnrw::new(NodeId(0));
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(runner.walker_seed(0));
        let mut serial = Vec::new();
        for _ in 0..200 {
            serial.push(walker.step(&mut client, &mut rng).unwrap());
        }
        prop_assert_eq!(&report.trace.per_walker[0], &serial);
        // Accounting matches the serial client's too.
        prop_assert_eq!(report.trace.stats, client.stats());
    }

    #[test]
    fn k_walker_batched_matches_threaded_runner_exactly(
        g in arb_graph(),
        seed in 0u64..300,
        k in 2usize..6,
        batch_size in 1usize..12,
    ) {
        let network = Arc::new(AttributedGraph::bare(g));
        let n = network.graph.node_count();
        let runner = MultiWalkRunner::new(k, 150, seed);
        let threaded = runner.run(
            &SharedOsn::new(SimulatedOsn::new_shared(network.clone())),
            |i, backend| {
                Box::new(Cnrw::with_backend(NodeId(((i * 13) % n) as u32), backend))
                    as Box<dyn RandomWalk + Send>
            },
            |v| v.index() as f64,
        );
        let (batched, _) = batched_report(&network, k, 150, batch_size, 3, seed);
        prop_assert_eq!(&batched.trace.per_walker, &threaded.trace.per_walker);
        // Merged in the same walker order: the pooled estimator is
        // bit-identical, which is (much) stronger than the merged-estimator
        // tolerance the estimators otherwise guarantee.
        prop_assert_eq!(batched.estimate.count(), threaded.estimate.count());
        prop_assert_eq!(batched.estimate.mean(), threaded.estimate.mean());
        // And the charged cost equals the shared-cache runner's.
        prop_assert_eq!(batched.interface.unique, threaded.trace.stats.unique);
    }
}
