//! Fault-injection tests for the batch endpoint + coalescing dispatcher.
//!
//! The failure model is deterministic and seeded (every `k`-th request
//! attempt drops), so each scenario here replays exactly. The invariants:
//!
//! * transient failures are **invisible to the walk** — retries never
//!   double-charge the budget, never duplicate a fetch, never change a
//!   trajectory, and never lose a walker;
//! * retries go through the **same rate limiter** as first attempts — each
//!   consumes a token, and the virtual clock shows the wait;
//! * a shared budget is never oversold, drops or not — mirroring the
//!   striped-cache stress in `tests/striped_cache.rs`;
//! * even an interface that fails **every** attempt terminates the run
//!   cleanly (bounded abandon, no hang, nothing charged).

use std::collections::HashSet;
use std::sync::Arc;

use osn_sampling::client::batch::BatchStats;
use osn_sampling::graph::attributes::AttributedGraph;
use osn_sampling::prelude::*;
use osn_sampling::walks::BatchDispatchReport;

fn clustered_network() -> Arc<AttributedGraph> {
    Arc::new(osn_sampling::datasets::clustered_graph().network)
}

/// The nodes the dispatcher actually fetched: each walker's start plus
/// every node it *departed from*. A walker's final position is never
/// fetched — it would only be needed for the step that never happened.
fn fetched_set(report: &BatchDispatchReport, starts: impl Iterator<Item = u32>) -> HashSet<u32> {
    let mut set: HashSet<u32> = starts.collect();
    for trace in &report.trace.per_walker {
        set.extend(trace[..trace.len().saturating_sub(1)].iter().map(|v| v.0));
    }
    set
}

fn run_dispatch(
    network: &Arc<AttributedGraph>,
    config: BatchConfig,
    budget: Option<u64>,
    walkers: usize,
    steps: usize,
    seed: u64,
) -> (BatchDispatchReport, BatchStats, Option<u64>, f64) {
    let n = network.graph.node_count();
    let mut client =
        SimulatedBatchOsn::configured(SimulatedOsn::new_shared(network.clone()), config, budget);
    let report = MultiWalkRunner::new(walkers, steps, seed).run_batched(
        &mut client,
        |i, backend| {
            Box::new(Cnrw::with_backend(NodeId(((i * 17) % n) as u32), backend))
                as Box<dyn RandomWalk + Send>
        },
        |v| v.index() as f64,
    );
    let remaining = client.remaining_budget();
    let elapsed = client.clock().elapsed_secs();
    (report, client.batch_stats(), remaining, elapsed)
}

#[test]
fn injected_drops_are_invisible_to_the_walk_and_charge_nothing_extra() {
    let network = clustered_network();
    const WALKERS: usize = 6;
    const STEPS: usize = 400;

    let reliable = BatchConfig::new(4).with_in_flight(3);
    let flaky = reliable.clone().with_failure_every(3).with_max_retries(2);
    let (clean, clean_stats, _, _) = run_dispatch(&network, reliable, None, WALKERS, STEPS, 9);
    let (faulty, faulty_stats, _, _) = run_dispatch(&network, flaky, None, WALKERS, STEPS, 9);

    // The failure model was actually exercised (clustered_graph has 90
    // nodes, all covered in ~40 requests; every third attempt dropped).
    assert!(
        faulty_stats.retries > 10,
        "retries: {}",
        faulty_stats.retries
    );

    // No walker lost: every walker completed its full step count.
    assert_eq!(faulty.trace.per_walker.len(), WALKERS);
    for (i, trace) in faulty.trace.per_walker.iter().enumerate() {
        assert_eq!(trace.len(), STEPS, "walker {i} lost steps to drops");
    }

    // Drops and retries changed *nothing* observable: identical
    // trajectories, identical charged cost, zero double-charges.
    assert_eq!(faulty.trace.per_walker, clean.trace.per_walker);
    assert_eq!(faulty.interface.unique, clean.interface.unique);
    let fetched = fetched_set(
        &faulty,
        (0..WALKERS).map(|i| ((i * 17) % network.graph.node_count()) as u32),
    );
    assert_eq!(faulty.interface.unique, fetched.len() as u64);
    // Every delivered id was delivered exactly once (the charged requests
    // are conserved; only the attempt count grew).
    assert_eq!(faulty_stats.submitted_ids, faulty.interface.issued);
    assert_eq!(clean_stats.submitted_ids, faulty_stats.submitted_ids);
    assert_eq!(
        faulty_stats.attempts,
        faulty_stats.submitted + faulty_stats.retries
    );
}

#[test]
fn retries_respect_the_rate_limiter() {
    // 5 calls per 10-second window, zero latency: attempt n can only
    // happen at t = floor((n-1)/5) * 10, retries included. If retries
    // bypassed the limiter, the clock would end earlier.
    let network = clustered_network();
    let rate = RateLimitConfig {
        calls_per_window: 5,
        window_secs: 10.0,
    };
    let config = BatchConfig::new(2)
        .with_in_flight(2)
        .with_rate_limit(rate)
        .with_failure_every(4)
        .with_max_retries(3);
    let (report, stats, _, elapsed) = run_dispatch(&network, config, None, 3, 60, 4);

    assert!(stats.retries > 0, "failure model must fire");
    assert_eq!(stats.attempts, stats.submitted + stats.retries);
    // The virtual clock advanced exactly as many windows as the *attempt*
    // count (not the request count) requires.
    let expected = ((stats.attempts - 1) / rate.calls_per_window) as f64 * rate.window_secs;
    assert_eq!(elapsed, expected, "attempts={}", stats.attempts);
    // Sanity: retries cost real windows — the same workload without
    // failures finishes sooner on the virtual clock.
    let quiet = BatchConfig::new(2).with_in_flight(2).with_rate_limit(rate);
    let (_, quiet_stats, _, quiet_elapsed) = run_dispatch(&network, quiet, None, 3, 60, 4);
    assert!(quiet_stats.attempts < stats.attempts);
    assert!(quiet_elapsed < elapsed);
    assert_eq!(report.trace.total_steps(), 3 * 60);
}

#[test]
fn shared_budget_is_never_oversold_under_failures() {
    // Mirror of `eight_thread_shared_budget_never_oversells` in
    // tests/striped_cache.rs, through the batched path with drops flying.
    let network = clustered_network();
    const BUDGET: u64 = 40;
    let config = BatchConfig::new(4)
        .with_in_flight(4)
        .with_failure_every(3)
        .with_max_retries(2);
    let (report, _, remaining, _) = run_dispatch(&network, config, Some(BUDGET), 8, 10_000, 0xBEEF);

    assert_eq!(
        report.interface.unique, BUDGET,
        "exactly the budget, never more"
    );
    assert_eq!(remaining, Some(0));
    // Each charged node is a distinct fetched one (no double-charging hid
    // inside the retry machinery).
    let fetched = fetched_set(
        &report,
        (0..8).map(|i| ((i * 17) % network.graph.node_count()) as u32),
    );
    assert_eq!(fetched.len() as u64, BUDGET);
    // Every walker terminated with a budget stop; none is lost in limbo.
    assert_eq!(report.stops.len(), 8);
    assert!(report
        .stops
        .iter()
        .all(|s| *s == osn_sampling::walks::WalkStop::BudgetExhausted));
    assert!(report.refused_nodes > 0);
}

#[test]
fn always_failing_interface_terminates_cleanly_without_charging() {
    use rand::SeedableRng;
    // failure_every = 1 with zero retries: every request permanently
    // drops. The dispatcher must abandon each node after its bounded
    // resubmission cap and terminate every walker — not hang, not charge.
    let network = clustered_network();
    let mut client = SimulatedBatchOsn::new(
        SimulatedOsn::new_shared(network.clone()),
        BatchConfig::new(4)
            .with_failure_every(1)
            .with_max_retries(0),
    );
    let mut walkers: Vec<Box<dyn RandomWalk + Send>> = (0..3)
        .map(|i| Box::new(Cnrw::new(NodeId(i as u32))) as Box<dyn RandomWalk + Send>)
        .collect();
    let mut rngs: Vec<rand_chacha::ChaCha12Rng> = (0..3)
        .map(|i| rand_chacha::ChaCha12Rng::seed_from_u64(i as u64))
        .collect();
    let report = CoalescingDispatcher::new(100).with_node_attempt_cap(4).run(
        &mut client,
        &mut walkers,
        &mut rngs,
        |_| 1.0,
    );

    assert_eq!(report.abandoned_nodes, 3, "every start node abandoned");
    assert!(report.trace.per_walker.iter().all(Vec::is_empty));
    assert!(report
        .stops
        .iter()
        .all(|s| *s == osn_sampling::walks::WalkStop::BudgetExhausted));
    assert_eq!(client.stats().unique, 0, "nothing was ever charged");
    // Bounded work: the 3 start nodes coalesce into one batch (B = 4) that
    // is resubmitted up to the 4-resubmission cap, one attempt each
    // (0 retries) — then everything is abandoned.
    assert_eq!(client.batch_stats().attempts, 4);
    assert_eq!(client.batch_stats().dropped, 4);
}
