//! Golden-trace regression test for the batched dispatch path.
//!
//! A committed fixture (`tests/fixtures/cnrw_batch_clustered.txt`) pins the
//! exact node sequences of two CNRW walkers driven by the coalescing
//! dispatcher over the clustered graph, fault injection included. Any
//! future dispatcher refactor that reorders RNG consumption, changes batch
//! composition in a way that leaks into trajectories, or perturbs the
//! charged accounting will fail this test instead of silently drifting.
//!
//! To regenerate after an *intentional* behavior change:
//!
//! ```text
//! UPDATE_FIXTURES=1 cargo test --test batch_golden_trace
//! ```
//!
//! and commit the diff with an explanation of why the trace moved.

use std::fmt::Write as _;
use std::sync::Arc;

use osn_sampling::prelude::*;

const WALKERS: usize = 2;
const STEPS: usize = 48;
const SEED: u64 = 0x601D;
const FIXTURE: &str = "tests/fixtures/cnrw_batch_clustered.txt";

fn render_golden() -> String {
    let network = Arc::new(osn_sampling::datasets::clustered_graph().network);
    let n = network.graph.node_count();
    let config = BatchConfig::new(4)
        .with_in_flight(2)
        .with_failure_every(7)
        .with_max_retries(2);
    let mut client = SimulatedBatchOsn::new(SimulatedOsn::new_shared(network.clone()), config);
    let report = MultiWalkRunner::new(WALKERS, STEPS, SEED).run_batched(
        &mut client,
        |i, backend| {
            Box::new(Cnrw::with_backend(NodeId(((i * 17) % n) as u32), backend))
                as Box<dyn RandomWalk + Send>
        },
        |v| v.index() as f64,
    );
    let stats = client.batch_stats();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# CNRW over the clustered graph through the coalescing batch dispatcher."
    );
    let _ = writeln!(
        out,
        "# {WALKERS} walkers x {STEPS} steps, batch size 4, in-flight window 2,"
    );
    let _ = writeln!(
        out,
        "# failure every 7th attempt with 2 retries, run seed {SEED:#x}."
    );
    let _ = writeln!(
        out,
        "# Regenerate: UPDATE_FIXTURES=1 cargo test --test batch_golden_trace"
    );
    for (i, trace) in report.trace.per_walker.iter().enumerate() {
        let nodes: Vec<String> = trace.iter().map(|v| v.0.to_string()).collect();
        let _ = writeln!(out, "walker{i}: {}", nodes.join(" "));
    }
    let _ = writeln!(out, "charged_unique: {}", report.interface.unique);
    let _ = writeln!(out, "requests: {}", stats.submitted);
    let _ = writeln!(out, "attempts: {}", stats.attempts);
    let _ = writeln!(out, "retries: {}", stats.retries);
    out
}

#[test]
fn batched_cnrw_reproduces_committed_golden_trace() {
    let fixture_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(FIXTURE);
    let rendered = render_golden();
    if std::env::var_os("UPDATE_FIXTURES").is_some() {
        std::fs::write(&fixture_path, &rendered).expect("write fixture");
    }
    let committed = std::fs::read_to_string(&fixture_path)
        .expect("fixture missing — run with UPDATE_FIXTURES=1 to create it");
    assert_eq!(
        rendered, committed,
        "batched CNRW trace diverged from the committed fixture; if the change \
         is intentional, regenerate with UPDATE_FIXTURES=1 and explain the move"
    );
}
