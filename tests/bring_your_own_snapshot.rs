//! Integration: users holding the paper's real snapshots can load them and
//! run the identical pipeline.
//!
//! We simulate that path by serializing a stand-in to a SNAP-style edge
//! list, re-reading it (including through the sparse-id loader), extracting
//! the largest connected component exactly as the paper does for Yelp, and
//! running a budget-limited estimation on the result.

use std::sync::Arc;

use osn_sampling::graph::analysis::largest_connected_subgraph;
use osn_sampling::graph::attributes::AttributedGraph;
use osn_sampling::graph::io::{read_edge_list, read_edge_list_compacted, write_edge_list};
use osn_sampling::prelude::*;

#[test]
fn edge_list_roundtrip_preserves_walk_behaviour() {
    let original = osn_sampling::datasets::facebook_like(Scale::Test, 11)
        .network
        .graph;

    let mut buffer = Vec::new();
    write_edge_list(&original, &mut buffer).unwrap();
    let reloaded = read_edge_list(buffer.as_slice()).unwrap();
    assert_eq!(original, reloaded);

    // Identical seeds produce identical walks on both copies.
    let run = |g: osn_sampling::graph::CsrGraph| {
        let mut client = SimulatedOsn::from_graph(g);
        let mut walker = Cnrw::new(NodeId(3));
        WalkSession::new(WalkConfig::steps(500).with_seed(9))
            .run(&mut walker, &mut client)
            .nodes()
            .to_vec()
    };
    assert_eq!(run(original), run(reloaded));
}

#[test]
fn sparse_id_snapshot_compacts_and_samples() {
    // Raw crawls use platform user ids; synthesize one with huge ids.
    let text = "\
# synthetic crawl with sparse ids
1000001 1000002
1000002 1000003
1000003 1000001
1000003 9999999
9999999 1000001
";
    let (graph, original_ids) = read_edge_list_compacted(text.as_bytes()).unwrap();
    assert_eq!(graph.node_count(), 4);
    assert_eq!(original_ids.len(), 4);
    assert!(original_ids.contains(&9999999));

    let mut client = SimulatedOsn::from_graph(graph);
    let mut walker = Srw::new(NodeId(0));
    let trace = WalkSession::new(WalkConfig::steps(200).with_seed(1)).run(&mut walker, &mut client);
    assert_eq!(trace.len(), 200);
    // Samples map back to platform ids.
    let first_platform_id = original_ids[trace.nodes()[0].index()];
    assert!(first_platform_id >= 1000001);
}

#[test]
fn lcc_extraction_then_estimation() {
    // Disconnected snapshot: a big component and a satellite pair — the
    // paper keeps only the LCC (as for Yelp).
    let mut builder = osn_sampling::graph::GraphBuilder::new();
    for i in 0..30u32 {
        for j in (i + 1)..30 {
            if (i + j) % 3 == 0 {
                builder.push_edge(i, j);
            }
        }
    }
    builder.push_edge(100, 101); // satellite
    let g = builder.build().unwrap();

    let (lcc, mapping) = largest_connected_subgraph(&g).unwrap();
    // (i+j) % 3 == 0 wires residue-0 nodes among themselves (10 nodes) and
    // residues 1 and 2 to each other (20 nodes): the LCC is the latter.
    assert_eq!(lcc.node_count(), 20);
    assert_eq!(mapping.len(), lcc.node_count());

    let truth = lcc.average_degree();
    let network = Arc::new(AttributedGraph::bare(lcc));
    let n = network.graph.node_count();
    let client = SimulatedOsn::new_shared(network.clone());
    let mut client = BudgetedClient::new(client, 25, n);
    let mut walker = Cnrw::new(NodeId(0));
    let trace =
        WalkSession::new(WalkConfig::steps(50_000).with_seed(5)).run(&mut walker, &mut client);

    let mut est = RatioEstimator::new();
    for &v in trace.nodes() {
        let k = network.graph.degree(v);
        est.push(k as f64, k);
    }
    let estimate = est.average_degree().expect("non-empty walk");
    assert!(
        (estimate - truth).abs() / truth < 0.5,
        "estimate {estimate} vs truth {truth}"
    );
}
