//! Property tests for the circulation engines behind CNRW/GNRW history.
//!
//! The invariants pinned here are exactly what Theorems 1–4 lean on, so they
//! must hold for **every** backend, population size, and promotion
//! threshold:
//!
//! * each circulation cycle covers the population exactly once;
//! * the first draw of each cycle is uniform over the population;
//! * the hybrid promotion threshold changes *when* the arena engine
//!   materializes slices, never the drawn coverage;
//! * legacy and arena backends agree on the `O(K)` accounting
//!   (`tracked_edges` / `total_entries`) under identical draw schedules.

use proptest::prelude::*;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

use osn_sampling::prelude::*;
use osn_sampling::walks::circulation::{CirculationEngine, INLINE_CAP};
use osn_sampling::walks::history::EdgeHistory;

fn population(n: usize) -> Vec<NodeId> {
    (0..n as u32).map(NodeId).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_cycle_covers_the_population_exactly_once(
        // Up to 150 so populations beyond PROMOTION_SPAN * INLINE_CAP = 64
        // exercise the spill stage, not just inline -> promoted.
        n in 1usize..150,
        threshold in 1usize..9,
        seed in 0u64..1000,
    ) {
        let pop = population(n);
        let mut engine = CirculationEngine::with_threshold(threshold);
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        for cycle in 0..3 {
            let mut seen = std::collections::HashSet::new();
            for _ in 0..n {
                let d = engine.draw(7, &pop, &mut rng).unwrap();
                prop_assert!(seen.insert(d), "repeat in cycle {} (t={})", cycle, threshold);
            }
            prop_assert_eq!(seen.len(), n);
            // The completing draw rewound the cycle: accounting reads zero.
            prop_assert_eq!(engine.used_len(7), Some(0));
        }
    }

    #[test]
    fn first_draw_of_each_cycle_is_uniform(
        n in 2usize..9,
        threshold in 1usize..9,
    ) {
        // Chi-square-ish bound: 600 fresh engines, each first draw must be
        // uniform over the population. With 600/n expected per item, a 0.45x
        // to 1.8x band is ~10 sigma — loose enough to never flake, tight
        // enough to catch any positional bias.
        let pop = population(n);
        let mut counts = vec![0usize; n];
        for seed in 0..600u64 {
            let mut engine = CirculationEngine::with_threshold(threshold);
            let mut rng = ChaCha12Rng::seed_from_u64(9000 + seed);
            let d = engine.draw(1, &pop, &mut rng).unwrap();
            counts[d.index()] += 1;
        }
        let expected = 600.0 / n as f64;
        for (i, &c) in counts.iter().enumerate() {
            prop_assert!(
                (c as f64) > 0.45 * expected && (c as f64) < 1.8 * expected,
                "item {} drawn {} times, expected ~{:.0}",
                i, c, expected
            );
        }
    }

    #[test]
    fn promotion_threshold_never_changes_the_drawn_set(
        // Crosses the spill boundary (n > 64) for part of the range.
        n in 2usize..120,
        seed in 0u64..500,
    ) {
        // Any threshold yields the same per-cycle coverage guarantee: after
        // k draws, the current cycle holds exactly (k mod n) distinct items
        // and every completed cycle covered all n. Run every admissible
        // threshold over the same population and check the cycle-set
        // invariant at every prefix length.
        for threshold in 1..=INLINE_CAP {
            let pop = population(n);
            let mut engine = CirculationEngine::with_threshold(threshold);
            let mut rng = ChaCha12Rng::seed_from_u64(seed);
            let mut cycle: Vec<NodeId> = Vec::new();
            for k in 1..=(2 * n + 3) {
                let d = engine.draw(3, &pop, &mut rng).unwrap();
                prop_assert!(!cycle.contains(&d), "repeat mid-cycle (t={})", threshold);
                cycle.push(d);
                if cycle.len() == n {
                    let mut ids: Vec<u32> = cycle.iter().map(|v| v.0).collect();
                    ids.sort_unstable();
                    let want: Vec<u32> = (0..n as u32).collect();
                    prop_assert_eq!(ids, want, "cycle not a cover (t={})", threshold);
                    cycle.clear();
                }
                prop_assert_eq!(engine.used_len(3), Some(k % n), "t={}", threshold);
            }
        }
    }

    #[test]
    fn backends_agree_on_accounting(
        seed in 0u64..500,
        edges in 2usize..6,
    ) {
        // Identical draw schedules over several edges with different
        // degrees: the O(K) bookkeeping the memory-profile experiments
        // read must be storage-independent at every step.
        let populations: Vec<Vec<NodeId>> =
            (0..edges).map(|e| population(1 + e * 7)).collect();
        let mut legacy = EdgeHistory::with_backend(HistoryBackend::Legacy);
        let mut arena = EdgeHistory::with_backend(HistoryBackend::Arena);
        let mut rng_l = ChaCha12Rng::seed_from_u64(seed);
        let mut rng_a = ChaCha12Rng::seed_from_u64(seed ^ 0xabcd);
        let mut schedule = ChaCha12Rng::seed_from_u64(seed.wrapping_mul(31));
        for _ in 0..300 {
            let e = schedule.gen_range(0..edges);
            let (u, v) = (NodeId(e as u32), NodeId(e as u32 + 100));
            legacy.draw(u, v, &populations[e], &mut rng_l).unwrap();
            arena.draw(u, v, &populations[e], &mut rng_a).unwrap();
            prop_assert_eq!(legacy.tracked_edges(), arena.tracked_edges());
            prop_assert_eq!(legacy.total_entries(), arena.total_entries());
            prop_assert_eq!(legacy.get_used_len(u, v), arena.get_used_len(u, v));
        }
    }

    #[test]
    fn cnrw_backends_are_distributionally_interchangeable(
        seed in 0u64..40,
    ) {
        // Walk the same graph with both backends: different RNG consumption
        // means different traces, but the circulation guarantee (windows of
        // deg(v) choices after repeated (u,v)-transits are permutations of
        // N(v)) must hold identically. The graph forces every 0->1 transit
        // through one hot edge.
        let g = osn_sampling::graph::GraphBuilder::new()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(1, 3)
            .add_edge(1, 4)
            .add_edge(2, 0)
            .add_edge(3, 0)
            .add_edge(4, 0)
            .build()
            .unwrap();
        for backend in [HistoryBackend::Legacy, HistoryBackend::Arena] {
            let mut client = SimulatedOsn::from_graph(g.clone());
            let mut rng = ChaCha12Rng::seed_from_u64(seed);
            let mut w = Cnrw::with_backend(NodeId(0), backend);
            let mut after = Vec::new();
            let mut prev = w.current();
            for _ in 0..1500 {
                let curr = w.step(&mut client, &mut rng).unwrap();
                if prev == NodeId(0) && curr == NodeId(1) {
                    let nxt = w.step(&mut client, &mut rng).unwrap();
                    after.push(nxt);
                    prev = nxt;
                    continue;
                }
                prev = curr;
            }
            for win in after.chunks_exact(4) {
                let mut ids: Vec<u32> = win.iter().map(|n| n.0).collect();
                ids.sort_unstable();
                prop_assert_eq!(ids, vec![0, 2, 3, 4], "window not a cover");
            }
        }
    }
}

/// GNRW draws the same RNG on both backends, so full traces (not just
/// distributions) must agree — the strongest possible equivalence witness
/// for the group engine. Plain test (one seeded graph sweep, no strategies
/// needed from proptest).
#[test]
fn gnrw_backends_agree_bit_for_bit_on_random_graphs() {
    use osn_sampling::graph::generators::erdos_renyi;
    for seed in 0..8u64 {
        let g = erdos_renyi(40, 0.2, seed).unwrap();
        let run = |backend: HistoryBackend| {
            let mut client = SimulatedOsn::from_graph(g.clone());
            let mut rng = ChaCha12Rng::seed_from_u64(seed ^ 0x5a5a);
            let mut w = Gnrw::with_backend(NodeId(0), Box::new(ByDegree::new()), backend);
            let trace: Vec<NodeId> = (0..4000)
                .map(|_| w.step(&mut client, &mut rng).unwrap())
                .collect();
            (trace, w.tracked_edges(), w.history_entries())
        };
        assert_eq!(
            run(HistoryBackend::Legacy),
            run(HistoryBackend::Arena),
            "seed {seed}"
        );
    }
}

/// ROADMAP arena follow-up: `restart()` must *reuse* the circulation arena
/// slab, not drop it. The observable is `Vec::capacity`: after a restart
/// the arena reads empty but keeps its buffer, and replaying an identical
/// walk fills it back up without a single re-allocation.
#[test]
fn arena_slab_is_reused_across_restarts() {
    use osn_sampling::graph::generators::erdos_renyi;
    let g = erdos_renyi(60, 0.25, 5).unwrap();
    let walk = |w: &mut Cnrw, seed: u64| {
        let mut client = SimulatedOsn::from_graph(g.clone());
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        for _ in 0..3_000 {
            w.step(&mut client, &mut rng).unwrap();
        }
    };
    let mut w = Cnrw::new(NodeId(0));
    walk(&mut w, 11);
    let capacity = w.arena_capacity().expect("arena backend");
    assert!(capacity > 0, "walk long enough to promote edges");
    assert!(w.tracked_edges() > 0);

    w.restart(NodeId(0));
    // History is gone; the slab is not.
    assert_eq!(w.tracked_edges(), 0);
    assert_eq!(
        w.arena_capacity(),
        Some(capacity),
        "restart() dropped the arena slab instead of reusing it"
    );

    // The identical walk replays entirely inside the retained buffer.
    walk(&mut w, 11);
    assert_eq!(
        w.arena_capacity(),
        Some(capacity),
        "replaying the same walk re-allocated the arena"
    );
}

/// Same contract for GNRW's twin-arena group engine.
#[test]
fn group_arena_slab_is_reused_across_restarts() {
    use osn_sampling::graph::generators::erdos_renyi;
    let g = erdos_renyi(60, 0.25, 6).unwrap();
    let walk = |w: &mut Gnrw, seed: u64| {
        let mut client = SimulatedOsn::from_graph(g.clone());
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        for _ in 0..3_000 {
            w.step(&mut client, &mut rng).unwrap();
        }
    };
    let mut w = Gnrw::new(NodeId(0), Box::new(ByDegree::new()));
    walk(&mut w, 12);
    let capacity = w.arena_capacity().expect("arena backend");
    assert!(capacity > 0, "walk long enough to promote edges");

    w.restart(NodeId(0));
    assert_eq!(w.tracked_edges(), 0);
    assert_eq!(w.arena_capacity(), Some(capacity));
    walk(&mut w, 12);
    assert_eq!(
        w.arena_capacity(),
        Some(capacity),
        "replaying the same walk re-allocated the group arenas"
    );
}

/// Engine-level pin of the same contract, including the legacy backend's
/// `None` answer (no arena to reuse there).
#[test]
fn engine_clear_preserves_arena_capacity() {
    let pop = population(40);
    let mut engine = CirculationEngine::with_threshold(1);
    let mut rng = ChaCha12Rng::seed_from_u64(3);
    for _ in 0..10 {
        engine.draw(0, &pop, &mut rng).unwrap();
    }
    let capacity = engine.arena_capacity();
    assert!(capacity >= 40);
    engine.clear();
    assert_eq!(engine.tracked(), 0);
    assert_eq!(engine.arena_capacity(), capacity);

    let legacy = EdgeHistory::with_backend(HistoryBackend::Legacy);
    assert_eq!(legacy.arena_capacity(), None);
    assert_eq!(
        EdgeHistory::with_backend(HistoryBackend::Arena).arena_capacity(),
        Some(0)
    );
}
