//! Golden-trace regression test for walks over the **compressed graph
//! substrate**.
//!
//! A committed fixture (`tests/fixtures/walks_compact_clustered.txt`) pins
//! the exact node sequences of CNRW, GNRW, and NB-CNRW over the clustered
//! graph's [`CompactCsr`] snapshot — both the serial step loop and the
//! coalescing batch dispatcher — plus the charged accounting. The same
//! run is also asserted bit-identical to the plain-CSR client in-process,
//! so the fixture pins *absolute* trajectories while the differential
//! check localizes a failure: fixture-only drift means the walk stack
//! moved, a differential failure means the compact read path broke.
//!
//! Any refactor of the varint encoding, the decode cache, the builder's
//! merge order, or the client's compact routing that leaks into
//! trajectories will fail here instead of silently drifting.
//!
//! To regenerate after an *intentional* behavior change:
//!
//! ```text
//! UPDATE_FIXTURES=1 cargo test --test compact_golden_trace
//! ```
//!
//! and commit the diff with an explanation of why the trace moved.

use std::fmt::Write as _;
use std::sync::Arc;

use osn_sampling::experiments::{Algorithm, GroupingSpec, TrialPlan};
use osn_sampling::graph::attributes::AttributedGraph;
use osn_sampling::prelude::*;

const STEPS: usize = 60;
const SEED: u64 = 0x0C5A;
const FIXTURE: &str = "tests/fixtures/walks_compact_clustered.txt";

fn algorithms() -> [Algorithm; 3] {
    [
        Algorithm::Cnrw,
        Algorithm::Gnrw(GroupingSpec::ByDegree),
        Algorithm::NbCnrw,
    ]
}

fn plans() -> (TrialPlan, TrialPlan) {
    let g = osn_sampling::datasets::clustered_graph().network.graph;
    let compact = Arc::new(CompactCsr::from_csr(&g));
    let packed = TrialPlan::from_compact(compact).with_max_steps(STEPS);
    let plain = TrialPlan::new(Arc::new(AttributedGraph::bare(g))).with_max_steps(STEPS);
    (packed, plain)
}

fn batched(plan: &TrialPlan) -> TrialPlan {
    let config = BatchConfig::new(2)
        .with_in_flight(3)
        .with_latency(0.02, 0.005)
        .with_seed(13);
    plan.clone().with_batch(config)
}

fn render_golden() -> String {
    let (packed, _) = plans();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# CNRW / GNRW / NB-CNRW over the clustered graph's CompactCsr snapshot."
    );
    let _ = writeln!(
        out,
        "# {STEPS} steps, run seed {SEED:#x}; `serial` is the step loop, `coalesced`"
    );
    let _ = writeln!(
        out,
        "# the batch dispatcher (size 2, in-flight window 3, endpoint seed 13)."
    );
    let _ = writeln!(
        out,
        "# Regenerate: UPDATE_FIXTURES=1 cargo test --test compact_golden_trace"
    );
    for alg in algorithms() {
        for (mode, plan) in [("serial", packed.clone()), ("coalesced", batched(&packed))] {
            let trace = plan.run(&alg, SEED);
            let nodes: Vec<String> = trace.nodes().iter().map(|v| v.0.to_string()).collect();
            let _ = writeln!(out, "{}[{mode}]: {}", alg.label(), nodes.join(" "));
            let _ = writeln!(
                out,
                "{}[{mode}] charged: issued {} unique {}",
                alg.label(),
                trace.stats.issued,
                trace.stats.unique
            );
        }
    }
    out
}

#[test]
fn compact_walks_reproduce_committed_golden_trace() {
    let fixture_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(FIXTURE);
    let rendered = render_golden();
    if std::env::var_os("UPDATE_FIXTURES").is_some() {
        std::fs::write(&fixture_path, &rendered).expect("write fixture");
    }
    let committed = std::fs::read_to_string(&fixture_path)
        .expect("fixture missing — run with UPDATE_FIXTURES=1 to create it");
    assert_eq!(
        rendered, committed,
        "compact-substrate trace diverged from the committed fixture; if the \
         change is intentional, regenerate with UPDATE_FIXTURES=1 and explain \
         the move"
    );
}

/// The differential half: the identical seeds over the plain CSR produce
/// the identical traces and accounting, serial and coalesced, so the
/// compressed substrate is a drop-in replacement for the walk stack.
#[test]
fn compact_walks_are_bit_identical_to_plain() {
    let (packed, plain) = plans();
    for alg in algorithms() {
        for seed in [SEED, SEED ^ 0x9E37_79B9] {
            let a = packed.run(&alg, seed);
            let b = plain.run(&alg, seed);
            assert_eq!(a.nodes(), b.nodes(), "{} serial", alg.label());
            assert_eq!(a.stats, b.stats, "{} serial accounting", alg.label());
            let a = batched(&packed).run(&alg, seed);
            let b = batched(&plain).run(&alg, seed);
            assert_eq!(a.nodes(), b.nodes(), "{} coalesced", alg.label());
            assert_eq!(a.stats, b.stats, "{} coalesced accounting", alg.label());
        }
    }
}

/// Rendering twice gives identical bytes (the fixture is regenerable on
/// any machine).
#[test]
fn compact_golden_render_is_deterministic() {
    assert_eq!(render_golden(), render_golden());
}
