//! Differential property tests for the compressed graph substrate — the
//! acceptance gate for [`osn_sampling::graph::compact::CompactCsr`].
//!
//! The contract: the delta-varint snapshot is a **lossless, canonical**
//! encoding of the plain CSR, and every walker-facing read path over it is
//! observationally identical to the uncompressed graph. Pinned here as
//! properties over arbitrary graphs:
//!
//! * **Round trip** — `CsrGraph → CompactCsr → CsrGraph` preserves every
//!   degree and neighbor list, and re-encoding the decompressed graph
//!   reproduces the identical bytes (the encoding is canonical).
//! * **Disk bytes** — `as_bytes`/`from_bytes` and `write_to`/`open`/
//!   `open_mmap` round-trip byte-for-byte, pass checksum validation, and
//!   the mapped snapshot serves the same reads as the in-memory one.
//! * **Streaming builder** — [`CompactBuilder`] fed the edge list in an
//!   arbitrary permutation, under an arbitrary (tiny) chunk capacity, is
//!   byte-identical to `from_csr` of the same graph: spill pattern and
//!   input order never leak into the output.
//! * **Decode cache** — [`DecodeCache`] of any slot count serves exactly
//!   the slices a direct decode produces, for any probe schedule.
//! * **Walks** — serial CNRW / NB-CNRW / GNRW step loops over a
//!   compact-backed [`SimulatedOsn`] are bit-identical to the plain client,
//!   with identical charged accounting.
//!
//! Varint boundary cases (1..4-byte lengths, huge gaps, trailing isolated
//! nodes) get a dedicated deterministic test on a sparse wide-id hub.

use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use std::sync::Arc;

use osn_sampling::graph::generators::erdos_renyi;
use osn_sampling::graph::GraphBuilder;
use osn_sampling::prelude::*;

/// A connected-ish random graph with 5..60 nodes (same recipe as
/// `tests/overlay_props.rs`).
fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (5usize..60, 0u64..1000).prop_map(|(n, seed)| {
        let p = (2.0 * (n as f64).ln() / n as f64).min(0.9);
        erdos_renyi(n, p, seed).expect("valid config")
    })
}

/// The undirected edge list of `g`, one `(u, v)` per edge with `u < v`.
fn edge_list(g: &CsrGraph) -> Vec<(u32, u32)> {
    g.nodes()
        .flat_map(|u| {
            g.neighbors(u)
                .iter()
                .filter(move |&&v| u.0 < v.0)
                .map(move |&v| (u.0, v.0))
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Node-for-node equality of a compact snapshot against a plain CSR.
fn assert_same_topology(compact: &CompactCsr, g: &CsrGraph) {
    assert_eq!(compact.node_count(), g.node_count());
    assert_eq!(compact.edge_count(), g.edge_count() as u64);
    for v in g.nodes() {
        assert_eq!(compact.degree(v), g.degree(v), "degree of {}", v.0);
        let decoded: Vec<NodeId> = compact.neighbors_iter(v).collect();
        assert_eq!(decoded.as_slice(), g.neighbors(v), "neighbors of {}", v.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `CsrGraph → CompactCsr → CsrGraph` is lossless, and re-encoding the
    /// decompressed graph is byte-identical (the encoding is canonical).
    #[test]
    fn compact_round_trips_arbitrary_graphs(g in arb_graph()) {
        let compact = CompactCsr::from_csr(&g);
        assert_same_topology(&compact, &g);
        prop_assert!(compact.validate().is_ok());
        let back = compact.to_csr().expect("snapshots decompress");
        for v in g.nodes() {
            prop_assert_eq!(back.neighbors(v), g.neighbors(v));
        }
        let reencoded = CompactCsr::from_csr(&back);
        prop_assert_eq!(reencoded.as_bytes(), compact.as_bytes());
    }

    /// Memory and disk round trips preserve every byte; both load paths
    /// (full read and mmap) validate and serve identical reads.
    #[test]
    fn disk_bytes_round_trip(g in arb_graph(), tag in 0u64..u64::MAX) {
        let compact = CompactCsr::from_csr(&g);
        let from_vec = CompactCsr::from_bytes(compact.as_bytes().to_vec())
            .expect("own bytes parse");
        prop_assert_eq!(from_vec.as_bytes(), compact.as_bytes());

        let path = std::env::temp_dir().join(format!(
            "compact_props_{}_{tag:x}.osncc",
            std::process::id()
        ));
        compact.write_to(&path).expect("write_to");
        let opened = CompactCsr::open(&path).expect("open");
        let mapped = CompactCsr::open_mmap(&path).expect("open_mmap");
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(opened.as_bytes(), compact.as_bytes());
        prop_assert!(mapped.validate().is_ok());
        assert_same_topology(&mapped, &g);
    }

    /// The streaming builder is input-order- and chunk-capacity-invariant:
    /// any permutation of the edge list through any (tiny) stage buffer
    /// produces the exact bytes `from_csr` does.
    #[test]
    fn streaming_builder_is_order_and_chunk_invariant(
        g in arb_graph(),
        chunk in 2usize..64,
        seed in 0u64..1000,
    ) {
        let want = CompactCsr::from_csr(&g);
        let mut edges = edge_list(&g);
        edges.shuffle(&mut ChaCha12Rng::seed_from_u64(seed));
        let mut builder =
            CompactBuilder::with_chunk_capacity(chunk).with_min_nodes(g.node_count());
        builder.add_edges(edges).expect("in-range ids");
        let built = builder.finish().expect("non-empty build");
        prop_assert_eq!(built.as_bytes(), want.as_bytes());
    }

    /// A decode cache of any slot count is transparent: every probe serves
    /// exactly the slice a direct decode produces.
    #[test]
    fn decode_cache_is_transparent(
        g in arb_graph(),
        slots in 1usize..16,
        probes in proptest::collection::vec(0usize..1000, 1..200),
    ) {
        let compact = CompactCsr::from_csr(&g);
        let mut cache = DecodeCache::new(slots);
        for p in probes {
            let v = NodeId((p % g.node_count()) as u32);
            let direct: Vec<NodeId> = compact.neighbors_iter(v).collect();
            prop_assert_eq!(cache.neighbors(&compact, v), direct.as_slice());
        }
        let (hits, misses) = cache.stats();
        prop_assert!(hits + misses > 0);
    }

    /// Serial step loops over a compact-backed client are bit-identical to
    /// the plain client — CNRW, NB-CNRW, and GNRW, with identical charged
    /// accounting.
    #[test]
    fn serial_walks_are_bit_identical_over_compact(
        g in arb_graph(),
        seed in 0u64..1000,
        steps in 1usize..300,
    ) {
        let compact = Arc::new(CompactCsr::from_csr(&g));
        let Some(start) = g.nodes().find(|&v| g.degree(v) > 0) else {
            return Ok(());
        };
        let walkers: [fn(NodeId) -> Box<dyn RandomWalk + Send>; 3] = [
            |s| Box::new(Cnrw::new(s)) as _,
            |s| Box::new(NbCnrw::new(s)) as _,
            |s| Box::new(Gnrw::new(s, Box::new(ByDegree::log2()))) as _,
        ];
        for make in walkers {
            let mut packed = SimulatedOsn::from_compact(Arc::clone(&compact));
            let mut plain = SimulatedOsn::from_graph(g.clone());
            let mut a = make(start);
            let mut b = make(start);
            let mut rng_a = ChaCha12Rng::seed_from_u64(seed ^ 0xC0DE);
            let mut rng_b = ChaCha12Rng::seed_from_u64(seed ^ 0xC0DE);
            for step in 0..steps {
                let va = a.step(&mut packed, &mut rng_a).unwrap();
                let vb = b.step(&mut plain, &mut rng_b).unwrap();
                prop_assert_eq!(va, vb, "diverged at step {}", step);
            }
            prop_assert_eq!(packed.stats().unique, plain.stats().unique);
            prop_assert_eq!(packed.stats().issued, plain.stats().issued);
        }
    }
}

/// Varint boundary cases the random band misses: neighbor ids and gaps
/// straddling every 7-bit length boundary (1..4-byte varints), a sparse
/// hub whose gap list is almost all multi-byte, and trailing isolated
/// nodes past the last edge.
#[test]
fn wide_id_hub_exercises_varint_boundaries() {
    // 2^7 ± 1, 2^14 ± 1, 2^21 ± 1 — first ids and gaps on both sides of
    // each continuation-byte threshold.
    let spokes: [u32; 9] = [
        1, 127, 128, 129, 16_383, 16_384, 16_385, 2_097_151, 2_097_152,
    ];
    let mut b = GraphBuilder::new();
    for &s in &spokes {
        b = b.add_edge(0, s);
    }
    // A second hub so one spoke has degree 2 (a gap after the first id).
    let g = b.add_edge(127, 2_097_152).build().unwrap();
    let compact = CompactCsr::from_csr(&g);
    assert_eq!(compact.node_count(), 2_097_153);
    assert_eq!(compact.degree(NodeId(0)), spokes.len());
    let hub: Vec<u32> = compact.neighbors_iter(NodeId(0)).map(|v| v.0).collect();
    assert_eq!(hub, spokes);
    compact.validate().expect("checksum");
    let back = compact.to_csr().expect("decompress");
    for v in g.nodes() {
        assert_eq!(back.neighbors(v), g.neighbors(v));
    }
    // The same graph through the streaming builder, edges reversed.
    let mut builder = CompactBuilder::with_chunk_capacity(4);
    builder
        .add_edges(spokes.iter().rev().map(|&s| (s, 0)))
        .unwrap();
    builder.add_edge(2_097_152, 127).unwrap();
    let streamed = builder.finish().unwrap();
    assert_eq!(streamed.as_bytes(), compact.as_bytes());
}
