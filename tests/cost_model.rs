//! Integration: the paper's cost model, end to end.
//!
//! Unique queries are the only charged resource; caches make repeats free;
//! rate limits translate unique queries into virtual wall-clock time; and
//! all of it composes with any walker and the multi-walker driver.

use std::sync::Arc;

use osn_sampling::client::{RateLimitConfig, RateLimitedOsn};
use osn_sampling::datasets::{clustered_graph, facebook_like, Scale};
use osn_sampling::prelude::*;

#[test]
fn unique_queries_equal_distinct_visited_nodes() {
    let network = Arc::new(facebook_like(Scale::Test, 1).network);
    let mut client = SimulatedOsn::new_shared(network.clone());
    let mut walker = Cnrw::new(NodeId(0));
    let trace =
        WalkSession::new(WalkConfig::steps(3_000).with_seed(2)).run(&mut walker, &mut client);

    // Every queried node is a visited node (plus the start).
    let mut distinct: std::collections::HashSet<NodeId> = trace.nodes().iter().copied().collect();
    distinct.insert(trace.start);
    assert_eq!(trace.stats.unique as usize, distinct.len());
    // Everything else was a cache hit.
    assert_eq!(
        trace.stats.issued,
        trace.stats.unique + trace.stats.cache_hits
    );
    // Exactly one neighbor query per step for CNRW.
    assert_eq!(trace.stats.issued as usize, trace.len());
}

#[test]
fn rate_limit_time_is_proportional_to_unique_queries() {
    let network = clustered_graph().network;
    let limit = RateLimitConfig {
        calls_per_window: 1,
        window_secs: 60.0,
    };
    let inner = SimulatedOsn::new(network);
    let mut client = RateLimitedOsn::new(inner, limit);
    let mut walker = Srw::new(NodeId(0));
    let trace = WalkSession::new(WalkConfig::steps(400).with_seed(3)).run(&mut walker, &mut client);
    let unique = trace.stats.unique;
    // First query is free (token available); each further unique query waits
    // one 60s window.
    let expected = 60.0 * (unique.saturating_sub(1)) as f64;
    assert_eq!(client.clock().elapsed_secs(), expected);
}

#[test]
fn budget_composes_with_rate_limit_and_multiwalk() {
    let network = Arc::new(facebook_like(Scale::Test, 4).network);
    let n = network.graph.node_count();
    let inner = SimulatedOsn::new_shared(network.clone());
    let limited = RateLimitedOsn::new(inner, RateLimitConfig::twitter());
    let mut client = BudgetedClient::new(limited, 30, n);

    let mut walkers: Vec<Box<dyn RandomWalk + Send>> = (0..3)
        .map(|i| Box::new(Cnrw::new(NodeId(i * 7))) as Box<dyn RandomWalk + Send>)
        .collect();
    let trace = MultiWalkSession::new(2_000, 5).run(&mut walkers, &mut client);
    assert!(
        trace.stats.unique <= 30,
        "budget leaked: {}",
        trace.stats.unique
    );
    assert!(trace.total_steps() > 0);
    // Cache sharing: pooled distinct nodes <= budget + starts.
    let distinct: std::collections::HashSet<NodeId> = trace.pooled().collect();
    assert!(distinct.len() <= 33);
}

#[test]
fn walkers_cannot_observe_uncached_topology() {
    // A budget-limited client refuses new nodes; a walk that exhausted its
    // budget can only revisit what it paid for — the trace's node set must
    // therefore be bounded by budget + 1 regardless of walk length.
    let network = Arc::new(clustered_graph().network);
    let n = network.graph.node_count();
    for budget in [5u64, 15, 40] {
        let client = SimulatedOsn::new_shared(network.clone());
        let mut client = BudgetedClient::new(client, budget, n);
        let mut walker = Srw::new(NodeId(0));
        let trace = WalkSession::new(WalkConfig::steps(100_000).with_seed(budget))
            .run(&mut walker, &mut client);
        let mut distinct: std::collections::HashSet<NodeId> =
            trace.nodes().iter().copied().collect();
        distinct.insert(trace.start);
        assert!(
            distinct.len() as u64 <= budget + 1,
            "budget {budget}: saw {} distinct nodes",
            distinct.len()
        );
    }
}
