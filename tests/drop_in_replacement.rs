//! Integration: the paper's "drop-in replacement" contract.
//!
//! Every SRW-family walker must (a) run through the same generic driver,
//! (b) converge to the same degree-proportional stationary distribution,
//! and (c) plug into the same estimator pipeline unchanged.

use std::sync::Arc;

use osn_sampling::datasets::{facebook_like, Scale};
use osn_sampling::estimate::metrics::{total_variation, EmpiricalDistribution};
use osn_sampling::prelude::*;

fn srw_family(start: NodeId) -> Vec<(String, Box<dyn RandomWalk>)> {
    vec![
        ("SRW".into(), Box::new(Srw::new(start))),
        ("NB-SRW".into(), Box::new(NbSrw::new(start))),
        ("CNRW".into(), Box::new(Cnrw::new(start))),
        (
            "GNRW(degree)".into(),
            Box::new(Gnrw::new(start, Box::new(ByDegree::new()))),
        ),
        (
            "GNRW(hash)".into(),
            Box::new(Gnrw::new(start, Box::new(ByHash::new(5)))),
        ),
        ("NB-CNRW".into(), Box::new(NbCnrw::new(start))),
    ]
}

#[test]
fn all_walkers_share_the_stationary_distribution() {
    let network = Arc::new(facebook_like(Scale::Test, 3).network);
    let theo = network.graph.degree_stationary_distribution();
    let n = network.graph.node_count();

    for (name, mut walker) in srw_family(NodeId(0)) {
        let mut client = SimulatedOsn::new_shared(network.clone());
        let trace = WalkSession::new(WalkConfig::steps(400_000).with_seed(1))
            .run(walker.as_mut(), &mut client);
        let mut dist = EmpiricalDistribution::new(n);
        dist.record_all(trace.nodes());
        let tv = total_variation(&theo, &dist.probabilities());
        assert!(tv < 0.03, "{name}: TV distance {tv} from k_v/2|E|");
    }
}

#[test]
fn walkers_are_interchangeable_in_the_driver() {
    let network = Arc::new(facebook_like(Scale::Test, 4).network);
    for (name, mut walker) in srw_family(NodeId(5)) {
        let client = SimulatedOsn::new_shared(network.clone());
        let mut client = BudgetedClient::new(client, 40, network.graph.node_count());
        let trace = WalkSession::new(WalkConfig::steps(100_000).with_seed(2))
            .run(walker.as_mut(), &mut client);
        assert!(trace.stats.unique <= 40, "{name} overspent the budget");
        assert!(!trace.is_empty(), "{name} made no progress");
        // Estimator pipeline identical for every walker.
        let mut est = RatioEstimator::new();
        for &v in trace.nodes() {
            let k = client.peek_degree(v);
            est.push(k as f64, k);
        }
        let estimate = est.average_degree().expect("non-empty trace");
        let truth = network.graph.average_degree();
        assert!(
            (estimate - truth).abs() / truth < 1.0,
            "{name}: estimate {estimate} wildly off from {truth}"
        );
    }
}

#[test]
fn mhrw_targets_uniform_instead() {
    let network = Arc::new(facebook_like(Scale::Test, 5).network);
    let n = network.graph.node_count();
    let mut client = SimulatedOsn::new_shared(network.clone());
    let mut walker = Mhrw::new(NodeId(0));
    let trace =
        WalkSession::new(WalkConfig::steps(400_000).with_seed(3)).run(&mut walker, &mut client);
    let mut dist = EmpiricalDistribution::new(n);
    dist.record_all(trace.nodes());
    let uniform = vec![1.0 / n as f64; n];
    let tv_uniform = total_variation(&uniform, &dist.probabilities());
    let tv_degree = total_variation(
        &network.graph.degree_stationary_distribution(),
        &dist.probabilities(),
    );
    assert!(tv_uniform < 0.05, "MHRW TV from uniform {tv_uniform}");
    assert!(
        tv_uniform < tv_degree,
        "MHRW should be closer to uniform ({tv_uniform}) than to degree ({tv_degree})"
    );
}

#[test]
fn identical_seed_identical_trace_for_every_walker() {
    let network = Arc::new(facebook_like(Scale::Test, 6).network);
    for (name, _) in srw_family(NodeId(1)) {
        let run = |seed: u64| {
            let (_, mut walker) = srw_family(NodeId(1))
                .into_iter()
                .find(|(n, _)| *n == name)
                .unwrap();
            let mut client = SimulatedOsn::new_shared(network.clone());
            WalkSession::new(WalkConfig::steps(2_000).with_seed(seed))
                .run(walker.as_mut(), &mut client)
                .nodes()
                .to_vec()
        };
        assert_eq!(run(7), run(7), "{name} is not reproducible");
        assert_ne!(run(7), run(8), "{name} ignores the seed");
    }
}
