//! Integration: the paper's efficiency theorems, verified end to end.
//!
//! Theorem 2 (CNRW asymptotic variance ≤ SRW's) and its GNRW analogue
//! (Theorem 4) are checked empirically with batch-means variance estimation
//! on long traces, against the exact fundamental-matrix value for SRW.

use std::sync::Arc;

use osn_sampling::datasets::{clustered_graph, facebook_like, Scale};
use osn_sampling::estimate::variance::batch_means_variance;
use osn_sampling::prelude::*;
use osn_sampling::walks::markov::{asymptotic_variance, TransitionKernel};

/// Long-trace f-sequence of a walker, f = degree of the visited node.
fn degree_sequence(
    network: &Arc<osn_sampling::graph::attributes::AttributedGraph>,
    mut walker: Box<dyn RandomWalk>,
    steps: usize,
    seed: u64,
) -> Vec<f64> {
    let mut client = SimulatedOsn::new_shared(network.clone());
    let trace = WalkSession::new(WalkConfig::steps(steps).with_seed(seed))
        .run(walker.as_mut(), &mut client);
    trace
        .nodes()
        .iter()
        .map(|&v| network.graph.degree(v) as f64)
        .collect()
}

#[test]
fn cnrw_variance_at_most_srw_on_clustered_graph() {
    // The ill-formed topology with the largest expected gap. A single
    // batch-means estimate has ~20% relative noise on this graph, so the
    // theorem's `<=` is checked on means over several seeded replications
    // (with the same slack the GNRW check below uses).
    let network = Arc::new(clustered_graph().network);
    let steps = 200_000;
    let batches = 100;
    let seeds = 1..=6u64;

    let mut srw_sum = 0.0;
    let mut cnrw_sum = 0.0;
    for seed in seeds {
        srw_sum += batch_means_variance(
            &degree_sequence(&network, Box::new(Srw::new(NodeId(0))), steps, seed),
            batches,
        )
        .unwrap();
        cnrw_sum += batch_means_variance(
            &degree_sequence(&network, Box::new(Cnrw::new(NodeId(0))), steps, seed),
            batches,
        )
        .unwrap();
    }
    assert!(
        cnrw_sum < srw_sum * 1.05,
        "Theorem 2 violated empirically: CNRW {cnrw_sum} vs SRW {srw_sum} (sums over 6 seeds)"
    );
}

#[test]
fn gnrw_variance_at_most_srw_on_clustered_graph() {
    let network = Arc::new(clustered_graph().network);
    let steps = 400_000;
    let batches = 200;
    let srw = batch_means_variance(
        &degree_sequence(&network, Box::new(Srw::new(NodeId(0))), steps, 2),
        batches,
    )
    .unwrap();
    let gnrw = batch_means_variance(
        &degree_sequence(
            &network,
            Box::new(Gnrw::new(NodeId(0), Box::new(ByDegree::new()))),
            steps,
            2,
        ),
        batches,
    )
    .unwrap();
    assert!(
        gnrw < srw * 1.05,
        "Theorem 4 violated empirically: GNRW {gnrw} vs SRW {srw}"
    );
}

#[test]
fn batch_means_agrees_with_fundamental_matrix_for_srw() {
    // Calibration check: the empirical variance estimator must land near
    // the exact fundamental-matrix value for the order-1 SRW chain.
    let network = Arc::new(facebook_like(Scale::Test, 9).network);
    let graph = &network.graph;
    let kernel = TransitionKernel::srw(graph);
    let pi = graph.degree_stationary_distribution();
    let f: Vec<f64> = graph.nodes().map(|v| graph.degree(v) as f64).collect();
    let exact = asymptotic_variance(&kernel, &pi, &f);

    let seq = degree_sequence(&network, Box::new(Srw::new(NodeId(0))), 600_000, 3);
    let empirical = batch_means_variance(&seq, 300).unwrap();
    let ratio = empirical / exact;
    assert!(
        (0.7..1.4).contains(&ratio),
        "batch means {empirical} vs exact {exact} (ratio {ratio})"
    );
}

#[test]
fn cnrw_beats_srw_variance_on_facebook_standin() {
    let network = Arc::new(facebook_like(Scale::Test, 10).network);
    let steps = 300_000;
    let srw = batch_means_variance(
        &degree_sequence(&network, Box::new(Srw::new(NodeId(0))), steps, 4),
        150,
    )
    .unwrap();
    let cnrw = batch_means_variance(
        &degree_sequence(&network, Box::new(Cnrw::new(NodeId(0))), steps, 4),
        150,
    )
    .unwrap();
    // Theorem 2 guarantees <=; on a real-shaped graph we expect a strict win.
    assert!(cnrw < srw, "CNRW {cnrw} vs SRW {srw}");
}
