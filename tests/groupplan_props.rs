//! Property tests for the precomputed [`GroupPlan`] layer behind plan-backed
//! GNRW.
//!
//! The plan is a build-time artifact the hot loop trusts blindly — a wrong
//! partition silently biases every plan-backed walk — so its invariants are
//! pinned over *arbitrary* graphs and grouping strategies, not just the
//! hand-built fixtures:
//!
//! * each node's flat partition is a valid permutation of its neighbor
//!   indices, grouped exactly as the live strategy would assign, with keys
//!   ascending and members ascending within each group (the scratch-path
//!   derivation order, which the exact mode's bit-identity leans on);
//! * alias tables sample groups proportionally to their member counts
//!   (chi-square-ish frequency bound);
//! * the circulation engine's plan path covers the population exactly once
//!   per super-cycle — Theorem 4's b(u,v) invariant — with and without an
//!   alias table, for arbitrary group shapes;
//! * a plan-backed exact-mode walker reproduces its reference trace
//!   draw-for-draw: the scratch GNRW walker on non-degenerate groupings,
//!   and CNRW when the grouping degenerates (every group a singleton, or
//!   one group per neighborhood).

use std::collections::HashSet;
use std::sync::Arc;

use proptest::prelude::*;

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha12Rng;

use osn_sampling::graph::attributes::{AttributedGraph, NodeAttributes};
use osn_sampling::prelude::*;
use osn_sampling::walks::circulation::GroupEngine;
use osn_sampling::walks::grouping::{GroupingStrategy, ValueBucketing};
use osn_sampling::walks::groupplan::{AliasTable, DrawBatch, NodeGroups};

/// A connected attributed graph: a ring over `n` nodes (no isolated nodes,
/// no dead ends) plus arbitrary chords, with a small-cardinality uint
/// attribute for the attribute-grouping arm.
fn build_network(n: usize, extra: &[(u32, u32)], tags: &[u64]) -> AttributedGraph {
    let mut b = GraphBuilder::new();
    for i in 0..n as u32 {
        b.push_edge(i, (i + 1) % n as u32);
    }
    for &(u, v) in extra {
        // The builder drops self loops and duplicate edges itself.
        b.push_edge(u % n as u32, v % n as u32);
    }
    let g = b.build().unwrap();
    let mut attrs = NodeAttributes::for_graph(&g);
    attrs
        .insert_uint("tag", tags.iter().cycle().take(n).copied().collect())
        .unwrap();
    AttributedGraph::new(g, attrs).unwrap()
}

fn network_strategy() -> impl Strategy<Value = AttributedGraph> {
    (
        3usize..28,
        prop::collection::vec((0u32..28, 0u32..28), 0..60),
        prop::collection::vec(0u64..4, 1..28),
    )
        .prop_map(|(n, extra, tags)| build_network(n, &extra, &tags))
}

/// The grouping arms under test: degree quantiles (the paper's default),
/// hashing, and exact-value attribute grouping.
fn mk_strategy(idx: usize) -> Box<dyn GroupingStrategy + Send> {
    match idx {
        0 => Box::new(ByDegree::new()),
        1 => Box::new(ByHash::new(3)),
        _ => Box::new(ByAttribute::with_bucketing("tag", ValueBucketing::Exact)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn plan_partitions_every_neighborhood_validly(
        network in network_strategy(),
        strat in 0usize..3,
    ) {
        let strategy = mk_strategy(strat);
        let plan = GroupPlan::build(&network, strategy.as_ref());
        prop_assert_eq!(plan.node_count(), network.graph.node_count());
        let client = SimulatedOsn::new(network.clone());
        let mut keys = Vec::new();
        let mut max_groups = 0usize;
        for v in 0..network.graph.node_count() {
            let v = NodeId(v as u32);
            let neighbors = network.graph.neighbors(v);
            let groups = plan.groups(v);
            prop_assert_eq!(groups.len(), neighbors.len());
            max_groups = max_groups.max(groups.group_count());

            // The flat partition is a permutation of the local indices.
            let mut seen: Vec<u32> = groups.members.to_vec();
            seen.sort_unstable();
            let expected: Vec<u32> = (0..neighbors.len() as u32).collect();
            prop_assert_eq!(seen, expected);

            // Keys strictly ascending; groups contiguous, non-empty, and
            // internally ascending (the scratch derivation's order).
            let mut prev_end = 0usize;
            for g in 0..groups.group_count() {
                if g > 0 {
                    prop_assert!(groups.keys[g - 1] < groups.keys[g]);
                }
                let (start, end) = groups.bounds(g);
                prop_assert_eq!(start, prev_end);
                prop_assert!(end > start, "group {} of {:?} is empty", g, v);
                prev_end = end;
                let members = groups.members_of(g);
                prop_assert!(members.windows(2).all(|w| w[0] < w[1]));
            }
            prop_assert_eq!(prev_end, neighbors.len());

            // The partition groups exactly as the live strategy assigns.
            strategy.assign(&client, neighbors, &mut keys);
            for g in 0..groups.group_count() {
                for &idx in groups.members_of(g) {
                    prop_assert_eq!(keys[idx as usize], groups.keys[g]);
                }
            }

            // An alias table exists exactly when there is a group choice.
            match plan.alias(v) {
                Some(table) => prop_assert_eq!(table.len(), groups.group_count()),
                None => prop_assert!(groups.group_count() < 2),
            }
        }
        prop_assert_eq!(plan.max_groups(), max_groups);
        prop_assert!(plan.heap_bytes() > 0);
    }

    #[test]
    fn alias_tables_sample_groups_proportionally_to_weight(
        weights in prop::collection::vec(1u64..40, 1..7),
        seed in 0u64..512,
    ) {
        let table = AliasTable::new(&weights);
        prop_assert_eq!(table.len(), weights.len());
        let total: u64 = weights.iter().sum();
        let draws = 6000usize;
        let mut rng = ChaCha12Rng::seed_from_u64(0xA11A5 ^ seed);
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..draws {
            let g = table.sample(rng.next_u64());
            prop_assert!(g < weights.len());
            counts[g] += 1;
        }
        for (g, &w) in weights.iter().enumerate() {
            let p = w as f64 / total as f64;
            let f = counts[g] as f64 / draws as f64;
            // ~6 sigma at 6000 draws — tight enough to catch a mis-built
            // column, loose enough to never flake across the case sweep.
            prop_assert!(
                (f - p).abs() < 0.045 + 0.05 * p,
                "group {} drew {:.4}, expected {:.4} (weights {:?})",
                g, f, p, &weights
            );
        }
    }

    #[test]
    fn plan_path_super_cycles_cover_population_exactly_once(
        sizes in prop::collection::vec(1usize..8, 1..6),
        seed in 0u64..512,
        with_alias in prop::bool::ANY,
    ) {
        // An arbitrary partition, fed to the circulation engine's plan path
        // directly: every super-cycle must cover the population exactly
        // once (Theorem 4's b(u,v) invariant), whether groups are proposed
        // through the alias table or the remaining-weighted scan.
        let total: usize = sizes.iter().sum();
        let members: Vec<u32> = (0..total as u32).collect();
        let mut ends = Vec::new();
        let mut acc = 0u32;
        for &s in &sizes {
            acc += s as u32;
            ends.push(acc);
        }
        let keys: Vec<u64> = (1..=sizes.len() as u64).map(|k| 10 * k).collect();
        let groups = NodeGroups { members: &members, ends: &ends, keys: &keys };
        let weights: Vec<u64> = sizes.iter().map(|&s| s as u64).collect();
        let alias = AliasTable::new(&weights);
        let alias_ref = if with_alias { Some(&alias) } else { None };

        let mut engine = GroupEngine::default();
        let mut batch = DrawBatch::new();
        let mut rem = Vec::new();
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        for cycle in 0..3 {
            let mut drawn = HashSet::new();
            for _ in 0..total {
                let idx = engine
                    .plan_view(7, &groups)
                    .draw(&groups, alias_ref, &mut batch, &mut rng, &mut rem);
                prop_assert!(idx < total);
                prop_assert!(drawn.insert(idx), "repeat in super-cycle {}", cycle);
            }
            prop_assert_eq!(drawn.len(), total);
            // The completing draw rewound the cycle: accounting reads zero.
            prop_assert_eq!(engine.total_entries(), 0);
        }
    }
}

proptest! {
    // Full walker traces are the expensive arm; fewer cases, same coverage
    // of the graph/strategy/seed space across runs.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn plan_exact_walks_match_their_reference_trace(
        network in network_strategy(),
        strat in 0usize..3,
        seed in 0u64..256,
    ) {
        let plan = Arc::new(GroupPlan::build(&network, mk_strategy(strat).as_ref()));
        let steps = 200usize;
        let trace = |mut w: Box<dyn RandomWalk + Send>| {
            let mut client = SimulatedOsn::new(network.clone());
            let mut rng = ChaCha12Rng::seed_from_u64(seed);
            let mut out = Vec::with_capacity(steps);
            for _ in 0..steps {
                out.push(w.step(&mut client, &mut rng).unwrap());
            }
            out
        };
        for backend in HistoryBackend::ALL {
            let planned = trace(Box::new(Gnrw::with_plan_backend(
                NodeId(0),
                Arc::clone(&plan),
                PlanMode::Exact,
                backend,
            )));
            if plan.degenerate().is_some() {
                // Degenerate groupings collapse GNRW to CNRW; the plan
                // walker must reproduce CNRW draw-for-draw.
                let cnrw = trace(Box::new(Cnrw::with_backend(NodeId(0), backend)));
                prop_assert_eq!(planned, cnrw);
            } else {
                // Exact mode consumes the RNG stream in scratch order, so
                // the traces are bit-identical, not merely equidistributed.
                let scratch = trace(Box::new(Gnrw::with_backend(
                    NodeId(0),
                    mk_strategy(strat),
                    backend,
                )));
                prop_assert_eq!(planned, scratch);
            }
        }
    }
}
