//! Orchestrator-level snapshot/resume: pause a multi-walker run between
//! scheduling rounds, serialize the **whole run** (walker circulation
//! state, RNG stream words, traces, estimator accumulators, dispatcher
//! cache) through the `osn-serde` text form, and resume — the completed
//! run must be bit-identical to the uninterrupted one, on both the serial
//! and coalesced execution backends across both history backends. This is
//! the contract the `osn-service` job server's kill-and-resume story
//! stands on.

use proptest::prelude::*;

use osn_sampling::prelude::*;
use osn_sampling::serde::Value;

/// An 80-node graph with a hub so circulation arenas grow past the inline
/// stage within a few hundred steps.
fn test_graph() -> CsrGraph {
    let mut b = GraphBuilder::new();
    for i in 0..80u32 {
        b.push_edge(i, (i + 1) % 80);
        b.push_edge(i, (i * 11 + 5) % 80);
    }
    for i in (2..80u32).step_by(2) {
        b.push_edge(0, i);
    }
    b.build().unwrap()
}

/// A mixed fleet: edge-circulation, group-circulation, and
/// non-backtracking circulation walkers all ride the same snapshot.
fn make_walker(i: usize, backend: HistoryBackend) -> Box<dyn RandomWalk + Send> {
    match i % 3 {
        0 => Box::new(Cnrw::with_backend(NodeId(i as u32), backend)),
        1 => Box::new(Gnrw::with_backend(
            NodeId(i as u32),
            Box::new(ByDegree::log2()),
            backend,
        )),
        _ => Box::new(NbCnrw::with_backend(NodeId(i as u32), backend)),
    }
}

fn value_of(v: NodeId) -> f64 {
    v.index() as f64
}

fn batch_endpoint() -> SimulatedBatchOsn {
    SimulatedBatchOsn::new(
        SimulatedOsn::from_graph(test_graph()),
        BatchConfig::new(3).with_in_flight(2),
    )
}

fn assert_matches_reference(report: &OrchestratorReport, reference: &OrchestratorReport) {
    assert_eq!(report.trace.per_walker, reference.trace.per_walker);
    assert_eq!(
        report.estimate.mean().map(f64::to_bits),
        reference.estimate.mean().map(f64::to_bits),
        "estimator accumulators must survive resume bit-for-bit"
    );
    assert_eq!(report.estimate.count(), reference.estimate.count());
    assert_eq!(report.stops, reference.stops);
    assert_eq!(report.rounds, reference.rounds);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn serial_resume_is_bit_identical(
        backend_idx in 0usize..2,
        pause in 0usize..300,
        slice in 1usize..7,
        seed in 0u64..1000,
    ) {
        let backend = HistoryBackend::ALL[backend_idx];
        let orch = WalkOrchestrator::new(4, 250, seed).with_backend(backend);

        // Uninterrupted reference run.
        let mut client = SimulatedOsn::from_graph(test_graph());
        let reference = orch.run_serial(&mut client, make_walker, value_of, &Never);

        // Killed after `pause` rounds: snapshot through the text form (as
        // the job server persists it), then resume against a cold client
        // and drive to completion in `slice`-round increments.
        let mut client = SimulatedOsn::from_graph(test_graph());
        let mut run = orch.start_serial(make_walker);
        run.run_rounds(&mut client, &value_of, pause);
        let text = run.snapshot().to_pretty();
        drop(run);

        let parsed = Value::parse(&text).map_err(|e| e.to_string())?;
        let mut resumed = orch
            .resume_serial(&parsed, make_walker)
            .map_err(|e| format!("resume failed: {e}"))?;
        let mut client = SimulatedOsn::from_graph(test_graph());
        while resumed.run_rounds(&mut client, &value_of, slice) > 0 {}
        prop_assert!(resumed.done());
        let report = resumed.into_report(client.stats());
        assert_matches_reference(&report, &reference);
    }

    #[test]
    fn coalesced_resume_is_bit_identical(
        backend_idx in 0usize..2,
        pause in 0usize..300,
        slice in 1usize..7,
        seed in 0u64..1000,
    ) {
        let backend = HistoryBackend::ALL[backend_idx];
        let orch = WalkOrchestrator::new(4, 250, seed).with_backend(backend);

        let mut endpoint = batch_endpoint();
        let reference = orch.run_coalesced(&mut endpoint, make_walker, value_of, &Never);

        // Killed after `pause` rounds. The resumed segment runs against a
        // *fresh* endpoint — the dispatcher cache rides the snapshot, so
        // nothing already fetched is re-requested.
        let mut endpoint = batch_endpoint();
        let mut run = orch.start_coalesced(make_walker);
        run.run_rounds(&mut endpoint, &value_of, pause);
        let text = run.snapshot().to_pretty();
        drop(run);

        let parsed = Value::parse(&text).map_err(|e| e.to_string())?;
        let mut resumed = orch
            .resume_coalesced(&parsed, make_walker)
            .map_err(|e| format!("resume failed: {e}"))?;
        let mut endpoint = batch_endpoint();
        while resumed.run_rounds(&mut endpoint, &value_of, slice) > 0 {}
        prop_assert!(resumed.done());
        let report = resumed.into_report(&endpoint);
        assert_matches_reference(&report, &reference);
        // Walker-side accounting also survives the snapshot.
        prop_assert_eq!(report.trace.stats, reference.trace.stats);
    }
}

#[test]
fn sliced_serial_run_equals_one_shot() {
    for backend in HistoryBackend::ALL {
        let orch = WalkOrchestrator::new(5, 300, 17).with_backend(backend);
        let mut client = SimulatedOsn::from_graph(test_graph());
        let reference = orch.run_serial(&mut client, make_walker, value_of, &Never);

        let mut client = SimulatedOsn::from_graph(test_graph());
        let mut run = orch.start_serial(make_walker);
        let mut slice = 1;
        while run.run_rounds(&mut client, &value_of, slice) > 0 {
            slice = slice % 7 + 1; // uneven slices: 1,2,…,7,1,…
        }
        let report = run.into_report(client.stats());
        assert_matches_reference(&report, &reference);
        assert_eq!(report.trace.stats, reference.trace.stats, "{backend}");
    }
}

#[test]
fn sliced_coalesced_run_equals_one_shot() {
    for backend in HistoryBackend::ALL {
        let orch = WalkOrchestrator::new(5, 300, 23).with_backend(backend);
        let mut endpoint = batch_endpoint();
        let reference = orch.run_coalesced(&mut endpoint, make_walker, value_of, &Never);

        let mut endpoint = batch_endpoint();
        let mut run = orch.start_coalesced(make_walker);
        let mut slice = 1;
        while run.run_rounds(&mut endpoint, &value_of, slice) > 0 {
            slice = slice % 5 + 1;
        }
        let report = run.into_report(&endpoint);
        assert_matches_reference(&report, &reference);
        assert_eq!(report.trace.stats, reference.trace.stats, "{backend}");
        assert_eq!(report.interface, reference.interface, "{backend}");
    }
}

#[test]
fn run_snapshots_are_byte_deterministic() {
    let snap = || {
        let orch = WalkOrchestrator::new(4, 200, 31);
        let mut endpoint = batch_endpoint();
        let mut run = orch.start_coalesced(make_walker);
        run.run_rounds(&mut endpoint, &value_of, 120);
        run.snapshot().to_pretty()
    };
    assert_eq!(snap(), snap(), "hash-map order leaked into a run snapshot");
}

#[test]
fn resume_rejects_mismatched_spec() {
    let orch = WalkOrchestrator::new(3, 100, 7);
    let mut client = SimulatedOsn::from_graph(test_graph());
    let mut run = orch.start_serial(make_walker);
    run.run_rounds(&mut client, &value_of, 5);
    let snap = run.snapshot();

    for wrong in [
        WalkOrchestrator::new(4, 100, 7), // fleet size
        WalkOrchestrator::new(3, 101, 7), // step cap
        WalkOrchestrator::new(3, 100, 8), // seed
        WalkOrchestrator::new(3, 100, 7).with_backend(HistoryBackend::Legacy), // backend
    ] {
        let err = wrong.resume_serial(&snap, make_walker).err().unwrap();
        assert!(err.contains("mismatch"), "unexpected error: {err}");
    }
    // A serial snapshot is not a coalesced one.
    assert!(orch.resume_coalesced(&snap, make_walker).is_err());
    // The matching spec resumes fine.
    assert!(orch.resume_serial(&snap, make_walker).is_ok());
}
