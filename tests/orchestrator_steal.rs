//! Integration contract of the unified orchestrator's work-stealing
//! restart policy.
//!
//! Three properties pin the subsystem:
//!
//! * **Provenance** — every node the [`SharedFrontier`] pool ever serves
//!   (remaining entries, steal targets, rescue targets, and the positions
//!   restarts abandoned) is a node some walker actually occupied: a start,
//!   a visited trace node, or a previously stolen target — which by
//!   induction bottoms out in starts and trace nodes. The frontier can
//!   never invent territory the fleet did not pay to discover.
//! * **Seeded determinism** — the serial (round-robin) backend's whole run,
//!   restart schedule included, is a pure function of the seed.
//! * **Cross-backend schedule equality** — the serial and coalesced
//!   backends consult the policy at the same round boundaries over the
//!   same RNG streams, so they produce identical traces *and* identical
//!   restart schedules, batching notwithstanding.

use proptest::prelude::*;

use std::collections::HashSet;
use std::sync::Arc;

use osn_sampling::graph::attributes::AttributedGraph;
use osn_sampling::graph::generators::erdos_renyi;
use osn_sampling::graph::NodeId;
use osn_sampling::prelude::*;
use osn_sampling::walks::{
    OrchestratorReport, RestartPolicy, RestartReason, SharedFrontier, WalkOrchestrator,
    WorkStealing,
};

/// Strategy: a connected random graph with 5..60 nodes (same recipe as the
/// other property suites in this directory).
fn arb_graph() -> impl Strategy<Value = osn_sampling::graph::CsrGraph> {
    (5usize..60, 0u64..1000).prop_map(|(n, seed)| {
        let p = (2.0 * (n as f64).ln() / n as f64).min(0.9);
        erdos_renyi(n, p, seed).expect("valid config")
    })
}

fn clustered_network() -> Arc<AttributedGraph> {
    Arc::new(osn_sampling::datasets::clustered_graph().network)
}

/// Run the clumped-start clustered scenario on the serial backend.
fn serial_steal_run(
    network: &Arc<AttributedGraph>,
    k: usize,
    steps: usize,
    budget: Option<u64>,
    seed: u64,
    policy: &dyn RestartPolicy,
) -> OrchestratorReport {
    let n = network.graph.node_count();
    let graph = &network.graph;
    let make = |i: usize, b| {
        Box::new(Cnrw::with_backend(NodeId((i % 10) as u32), b)) as Box<dyn RandomWalk + Send>
    };
    let orch = WalkOrchestrator::new(k, steps, seed);
    match budget {
        Some(budget) => {
            let mut client =
                BudgetedClient::new(SimulatedOsn::new_shared(network.clone()), budget, n);
            orch.run_serial(&mut client, make, |v| graph.degree(v) as f64, policy)
        }
        None => {
            let mut client = SimulatedOsn::new_shared(network.clone());
            orch.run_serial(&mut client, make, |v| graph.degree(v) as f64, policy)
        }
    }
}

/// Starts ∪ trace nodes — the territory the fleet actually occupied.
fn occupied(report: &OrchestratorReport, k: usize) -> HashSet<u32> {
    let mut seen: HashSet<u32> = (0..k as u32).map(|i| i % 10).collect();
    seen.extend(report.trace.pooled().map(|v| v.0));
    seen
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Frontier provenance on arbitrary connected graphs: everything the
    /// pool serves (and retains) was visited by some walker.
    #[test]
    fn frontier_only_serves_visited_nodes(
        g in arb_graph(),
        k in 2usize..5,
        steps in 50usize..200,
        seed in 0u64..500,
    ) {
        let network = Arc::new(AttributedGraph::bare(g));
        let n = network.graph.node_count();
        let frontier = SharedFrontier::with_stripes(4, 8);
        let policy = WorkStealing::new(1.05, 8, frontier.clone());
        let graph = network.graph.clone();
        let mut client = SimulatedOsn::new_shared(network.clone());
        let report = WalkOrchestrator::new(k, steps, seed).run_serial(
            &mut client,
            |i, b| Box::new(Cnrw::with_backend(NodeId((i % n) as u32), b)) as _,
            |v| graph.degree(v) as f64,
            &policy,
        );
        let mut seen: HashSet<u32> = (0..k).map(|i| (i % n) as u32).collect();
        seen.extend(report.trace.pooled().map(|v| v.0));
        for entry in frontier.entries() {
            prop_assert!(
                seen.contains(&entry.node.0),
                "pooled entry {:?} was never visited",
                entry.node
            );
            prop_assert_eq!(entry.degree, network.graph.degree(entry.node));
            prop_assert!(entry.owner < k);
        }
        for event in &report.restarts {
            prop_assert!(
                seen.contains(&event.to.0),
                "restart target {:?} was never visited",
                event.to
            );
            prop_assert!(
                seen.contains(&event.from.0),
                "abandoned position {:?} was never occupied",
                event.from
            );
        }
    }
}

#[test]
fn work_stealing_schedule_is_a_function_of_the_seed() {
    // Same seed -> identical traces, stops, AND restart schedule; a
    // different seed moves the schedule (the run is not degenerate).
    let network = clustered_network();
    let run = |seed: u64| {
        let policy = WorkStealing::new(1.1, 16, SharedFrontier::with_stripes(8, 16));
        let report = serial_steal_run(&network, 6, 600, Some(45), seed, &policy);
        (
            report.trace.per_walker.clone(),
            report.stops.clone(),
            report.restarts.clone(),
        )
    };
    let (traces_a, stops_a, restarts_a) = run(7);
    let (traces_b, stops_b, restarts_b) = run(7);
    assert_eq!(traces_a, traces_b);
    assert_eq!(stops_a, stops_b);
    assert_eq!(restarts_a, restarts_b);
    assert!(
        !restarts_a.is_empty(),
        "budgeted clumped starts must exercise restarts"
    );
    let (_, _, restarts_c) = run(8);
    assert_ne!(
        restarts_a, restarts_c,
        "a different seed must reschedule the restarts"
    );
}

#[test]
fn rescues_target_cached_territory_and_respect_the_budget() {
    let network = clustered_network();
    let budget = 40u64;
    let policy = WorkStealing::new(1.1, 16, SharedFrontier::with_stripes(8, 16));
    let report = serial_steal_run(&network, 6, 800, Some(budget), 11, &policy);
    let seen = occupied(&report, 6);
    let rescues: Vec<_> = report
        .restarts
        .iter()
        .filter(|e| e.reason == RestartReason::Refused)
        .collect();
    assert!(!rescues.is_empty(), "budget must trigger rescues here");
    for rescue in rescues {
        // A rescue target is published territory: its neighbor list was
        // fetched when its owner departed it, i.e. it is cached — the
        // rescued walker keeps sampling without burning budget.
        assert!(seen.contains(&rescue.to.0));
    }
    // The budget invariant is untouched by all the relocation churn.
    assert!(report.trace.stats.unique <= budget);
}

#[test]
fn serial_and_coalesced_backends_agree_on_traces_and_restart_schedule() {
    // The unified core's headline cross-backend property, exercised with
    // an *active* policy (the `Never` equivalences are pinned elsewhere):
    // round-based backends share boundaries, streams, and steal outcomes.
    let network = clustered_network();
    let graph = network.graph.clone();
    let make = |i: usize, b| {
        Box::new(Cnrw::with_backend(NodeId((i % 10) as u32), b)) as Box<dyn RandomWalk + Send>
    };
    let orch = WalkOrchestrator::new(5, 400, 21);

    let serial_policy = WorkStealing::new(1.1, 16, SharedFrontier::with_stripes(8, 16));
    let mut serial_client = SimulatedOsn::new_shared(network.clone());
    let serial = orch.run_serial(
        &mut serial_client,
        make,
        |v| graph.degree(v) as f64,
        &serial_policy,
    );

    for batch_size in [1usize, 4, 16] {
        let coalesced_policy = WorkStealing::new(1.1, 16, SharedFrontier::with_stripes(8, 16));
        let mut batch_client = SimulatedBatchOsn::new(
            SimulatedOsn::new_shared(network.clone()),
            BatchConfig::new(batch_size).with_in_flight(2),
        );
        let coalesced = orch.run_coalesced(
            &mut batch_client,
            make,
            |v| graph.degree(v) as f64,
            &coalesced_policy,
        );
        assert_eq!(
            serial.trace.per_walker, coalesced.trace.per_walker,
            "batch_size={batch_size}"
        );
        assert_eq!(
            serial.restarts, coalesced.restarts,
            "batch_size={batch_size}"
        );
        assert_eq!(serial.estimate.count(), coalesced.estimate.count());
        assert_eq!(serial.estimate.mean(), coalesced.estimate.mean());
    }
    assert!(
        !serial.restarts.is_empty(),
        "scenario must exercise the policy"
    );
}

#[test]
fn threaded_backend_runs_work_stealing_without_perturbing_accounting() {
    // Thread interleaving may reorder publishes (the restart schedule is
    // allowed to differ from the serial backend's), but the run must
    // complete, respect the shared budget, and only relocate into visited
    // territory.
    let network = clustered_network();
    let budget = 45u64;
    let k = 4usize;
    let client = SharedOsn::configured(SimulatedOsn::new_shared(network.clone()), 8, Some(budget));
    let graph = network.graph.clone();
    let policy = WorkStealing::new(1.1, 16, SharedFrontier::with_stripes(8, 16));
    let report = WalkOrchestrator::new(k, 500, 3).run_threaded(
        &client,
        |i, b| Box::new(Cnrw::with_backend(NodeId((i % 10) as u32), b)) as _,
        |v| graph.degree(v) as f64,
        &policy,
    );
    assert!(report.trace.stats.unique <= budget);
    let seen = occupied(&report, k);
    for event in &report.restarts {
        assert!(
            seen.contains(&event.to.0),
            "target {:?} unvisited",
            event.to
        );
    }
}
