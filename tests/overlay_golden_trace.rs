//! Golden-trace regression test for mid-walk graph mutation through the
//! delta overlay.
//!
//! A committed fixture (`tests/fixtures/cnrw_overlay_clustered.txt`) pins
//! the exact node sequences of three CNRW walkers driven by the
//! poll-driven reactor over the clustered graph while a **seeded
//! mutation schedule fires between event slices**: at each boundary the
//! due mutations are applied to the endpoint's overlay, the touched
//! nodes' circulation state is dropped via
//! [`osn_sampling::walks::ReactorWalkRun::invalidate_nodes`], and the
//! dispatcher re-fetches (and re-charges) the mutated neighbor lists.
//! Any refactor of the overlay read path, the invalidation plumbing, the
//! schedule generator, or the reactor's cache eviction that leaks into
//! trajectories or accounting will fail this test instead of silently
//! drifting.
//!
//! To regenerate after an *intentional* behavior change:
//!
//! ```text
//! UPDATE_FIXTURES=1 cargo test --test overlay_golden_trace
//! ```
//!
//! and commit the diff with an explanation of why the trace moved.

use std::fmt::Write as _;
use std::sync::Arc;

use osn_sampling::prelude::*;

const WALKERS: usize = 3;
const STEPS: usize = 60;
const SEED: u64 = 0x0E7A;
const SLICES: usize = 4;
const EVENTS_PER_SLICE: usize = 18;
const MUTATIONS: usize = 40;
const FIXTURE: &str = "tests/fixtures/cnrw_overlay_clustered.txt";

fn render_golden() -> String {
    let network = Arc::new(osn_sampling::datasets::clustered_graph().network);
    let n = network.graph.node_count();
    let spec = ScheduleSpec::new(MUTATIONS, SLICES as f64, 0x5EED).with_delete_fraction(0.4);
    let mut schedule = MutationSchedule::generate(&network.graph, &spec);
    let config = BatchConfig::new(2)
        .with_in_flight(3)
        .with_latency(0.02, 0.005)
        .with_per_id_latency(0.002)
        .with_seed(13);
    let mut client = SimulatedBatchOsn::new(SimulatedOsn::new_shared(network.clone()), config);
    let orch = WalkOrchestrator::new(WALKERS, STEPS, SEED);
    let mut run = orch.start_reactor(|i, backend| {
        Box::new(Cnrw::with_backend(NodeId(((i * 17) % n) as u32), backend))
            as Box<dyn RandomWalk + Send>
    });
    let value = |v: NodeId| v.index() as f64;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# CNRW over the clustered graph through the reactor while the graph mutates."
    );
    let _ = writeln!(
        out,
        "# {WALKERS} walkers x {STEPS} steps, batch size 2, in-flight window 3,"
    );
    let _ = writeln!(
        out,
        "# {MUTATIONS}-event seeded schedule (40% deletes) drained over {SLICES} slice boundaries"
    );
    let _ = writeln!(
        out,
        "# of {EVENTS_PER_SLICE} reactor events each, run seed {SEED:#x}."
    );
    let _ = writeln!(
        out,
        "# Regenerate: UPDATE_FIXTURES=1 cargo test --test overlay_golden_trace"
    );
    for slice in 0..SLICES {
        run.run_events(&mut client, &value, EVENTS_PER_SLICE);
        let due = schedule.due((slice + 1) as f64).to_vec();
        let touched = client.apply_mutations(&due);
        let dropped = run.invalidate_nodes(&touched);
        let _ = writeln!(
            out,
            "boundary{}: due {} touched {} dropped {}",
            slice,
            due.len(),
            touched.len(),
            dropped
        );
    }
    run.run_events(&mut client, &value, usize::MAX);
    let _ = writeln!(
        out,
        "overlay: log {} patched_nodes {}",
        client.inner().mutation_log().len(),
        client.inner().overlay().patched_nodes()
    );
    let report = run.into_report(&client);
    for (i, trace) in report.trace.per_walker.iter().enumerate() {
        let nodes: Vec<String> = trace.iter().map(|v| v.0.to_string()).collect();
        let _ = writeln!(out, "walker{i}: {}", nodes.join(" "));
    }
    let _ = writeln!(
        out,
        "charged_unique: {}",
        report
            .interface
            .expect("reactor reports interface stats")
            .unique
    );
    let batch = client.batch_stats();
    let _ = writeln!(out, "requests: {}", batch.submitted);
    let _ = writeln!(out, "attempts: {}", batch.attempts);
    out
}

#[test]
fn overlay_cnrw_reproduces_committed_golden_trace() {
    let fixture_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(FIXTURE);
    let rendered = render_golden();
    if std::env::var_os("UPDATE_FIXTURES").is_some() {
        std::fs::write(&fixture_path, &rendered).expect("write fixture");
    }
    let committed = std::fs::read_to_string(&fixture_path)
        .expect("fixture missing — run with UPDATE_FIXTURES=1 to create it");
    assert_eq!(
        rendered, committed,
        "overlay CNRW trace diverged from the committed fixture; if the change \
         is intentional, regenerate with UPDATE_FIXTURES=1 and explain the move"
    );
}

/// The mutating run is a pure function of its seeds: rendering twice
/// gives identical bytes (the fixture is regenerable on any machine).
#[test]
fn overlay_golden_render_is_deterministic() {
    assert_eq!(render_golden(), render_golden());
}
