//! Differential property tests for the evolving-graph delta overlay —
//! the acceptance gate for [`osn_graph::DeltaOverlay`].
//!
//! The contract: a mutated [`SimulatedOsn`] (base CSR + overlay) must be
//! **observationally identical** to a client over a freshly rebuilt CSR
//! snapshot of the mutated graph. Pinned here as properties over
//! arbitrary graphs and mutation batches:
//!
//! * **Reads** — neighbor lists and degrees through the overlay match the
//!   rebuilt graph node for node (undirected and directed snapshots).
//! * **Walks** — traces over the overlay client are bit-identical to
//!   traces over the rebuilt client, for CNRW, NB-CNRW, and GNRW, across
//!   all three execution backends: the serial step loop, the coalescing
//!   dispatcher, and the poll-driven reactor (full-report equality,
//!   accounting included).
//! * **Mid-walk mutation** — applying a batch between slices and calling
//!   `invalidate_nodes` keeps serial, coalesced, and reactor runs in
//!   lockstep with each other (trace-for-trace), so no backend's cache
//!   can serve a stale neighbor list.
//! * **Coverage after invalidation** — Theorem 4's exactly-once
//!   circulation guarantee restarts on the *post-mutation* neighborhood:
//!   windows of draws after repeated transits of a hot edge are exact
//!   permutations of the new neighbor set.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

use osn_sampling::graph::generators::erdos_renyi;
use osn_sampling::prelude::*;
use osn_sampling::walks::OrchestratorReport;

/// A connected-ish random graph with 5..60 nodes (same recipe as
/// `tests/reactor_equivalence.rs`).
fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (5usize..60, 0u64..1000).prop_map(|(n, seed)| {
        let p = (2.0 * (n as f64).ln() / n as f64).min(0.9);
        erdos_renyi(n, p, seed).expect("valid config")
    })
}

/// A seeded, *effective* mutation batch over `g` that never strands a
/// walker: deletes that would drop an endpoint to degree zero are
/// filtered out, so every node that starts reachable stays steppable and
/// the walks below can run unconditionally.
fn safe_batch(g: &CsrGraph, events: usize, delete_fraction: f64, seed: u64) -> Vec<EdgeMutation> {
    let spec = ScheduleSpec::new(events, 1.0, seed).with_delete_fraction(delete_fraction);
    let schedule = MutationSchedule::generate(g, &spec);
    let mut overlay = DeltaOverlay::new();
    let mut batch = Vec::new();
    for &m in schedule.events() {
        if m.op == MutationOp::Delete
            && (overlay.degree(g, m.u) <= 1 || overlay.degree(g, m.v) <= 1)
        {
            continue;
        }
        if overlay.apply(g, m) {
            batch.push(m);
        }
    }
    batch
}

/// An overlay client with `batch` applied, plus the reference client over
/// the freshly rebuilt CSR of the same mutated graph.
fn mutated_pair(g: &CsrGraph, batch: &[EdgeMutation]) -> (SimulatedOsn, SimulatedOsn) {
    let mut overlay = SimulatedOsn::from_graph(g.clone());
    overlay.apply_mutations(batch);
    let rebuilt = SimulatedOsn::from_graph(overlay.rebuilt_graph());
    (overlay, rebuilt)
}

/// Start nodes with nonzero degree in the mutated graph, so every walker
/// in a fleet has somewhere to step.
fn alive_starts(g: &CsrGraph) -> Vec<NodeId> {
    g.nodes().filter(|&v| g.degree(v) > 0).collect()
}

/// The three history-aware walkers under differential test.
#[derive(Clone, Copy, Debug)]
enum Kind {
    Cnrw,
    NbCnrw,
    Gnrw,
}

const KINDS: [Kind; 3] = [Kind::Cnrw, Kind::NbCnrw, Kind::Gnrw];

fn make_fleet(
    kind: Kind,
    starts: Vec<NodeId>,
) -> impl Fn(usize, HistoryBackend) -> Box<dyn RandomWalk + Send> {
    move |i, backend| {
        let start = starts[(i * 13) % starts.len()];
        match kind {
            Kind::Cnrw => Box::new(Cnrw::with_backend(start, backend)) as _,
            Kind::NbCnrw => Box::new(NbCnrw::with_backend(start, backend)) as _,
            Kind::Gnrw => Box::new(Gnrw::with_backend(
                start,
                Box::new(ByDegree::log2()),
                backend,
            )) as _,
        }
    }
}

/// Full-report equality (same shape as `tests/reactor_equivalence.rs`).
fn assert_reports_identical(a: &OrchestratorReport, b: &OrchestratorReport) {
    assert_eq!(a.trace.per_walker, b.trace.per_walker);
    assert_eq!(a.stops, b.stops);
    assert_eq!(a.trace.stats, b.trace.stats);
    assert_eq!(a.interface, b.interface);
    assert_eq!(a.refused_nodes, b.refused_nodes);
    assert_eq!(a.abandoned_nodes, b.abandoned_nodes);
    assert_eq!(
        a.estimate.mean().map(f64::to_bits),
        b.estimate.mean().map(f64::to_bits)
    );
}

fn endpoint(inner: SimulatedOsn, batch_size: usize) -> SimulatedBatchOsn {
    let config = BatchConfig::new(batch_size)
        .with_in_flight(3)
        .with_latency(0.01, 0.002)
        .with_seed(5);
    SimulatedBatchOsn::new(inner, config)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Reads through the overlay are indistinguishable from the rebuilt
    /// CSR — every node, neighbors and degree, on the undirected snapshot.
    #[test]
    fn overlay_reads_match_rebuilt_graph(
        g in arb_graph(),
        events in 1usize..80,
        delete_pct in 0u8..10,
        seed in 0u64..1000,
    ) {
        let batch = safe_batch(&g, events, delete_pct as f64 / 10.0, seed);
        let (mut client, rebuilt) = mutated_pair(&g, &batch);
        let csr = rebuilt.graph().clone();
        for v in g.nodes() {
            prop_assert_eq!(client.peek_degree(v), csr.degree(v));
            prop_assert_eq!(
                client.neighbors(v).unwrap(),
                csr.neighbors(v),
                "node {} neighbor list diverged", v.0
            );
        }
    }

    /// Serial step loops over the overlay are bit-identical to the same
    /// walk over the rebuilt snapshot — CNRW, NB-CNRW, and GNRW, with
    /// identical charged accounting.
    #[test]
    fn serial_walks_are_bit_identical_over_overlay(
        g in arb_graph(),
        events in 1usize..60,
        delete_pct in 0u8..10,
        seed in 0u64..1000,
        steps in 1usize..300,
    ) {
        let batch = safe_batch(&g, events, delete_pct as f64 / 10.0, seed);
        let (mut client, mut rebuilt) = mutated_pair(&g, &batch);
        let starts = alive_starts(rebuilt.graph());
        if starts.is_empty() {
            return Ok(());
        }
        let start = starts[0];
        for kind in KINDS {
            let make = make_fleet(kind, vec![start]);
            let mut a = make(0, HistoryBackend::Arena);
            let mut b = make(0, HistoryBackend::Arena);
            let mut rng_a = ChaCha12Rng::seed_from_u64(seed ^ 0xA11CE);
            let mut rng_b = ChaCha12Rng::seed_from_u64(seed ^ 0xA11CE);
            for step in 0..steps {
                let va = a.step(&mut client, &mut rng_a).unwrap();
                let vb = b.step(&mut rebuilt, &mut rng_b).unwrap();
                prop_assert_eq!(va, vb, "{:?} diverged at step {}", kind, step);
            }
            prop_assert_eq!(client.stats().unique, rebuilt.stats().unique, "{:?}", kind);
            client.reset();
            rebuilt.reset();
        }
    }

    /// Orchestrated coalesced and reactor runs over the overlay produce
    /// the full report — traces, stops, interface accounting, estimate —
    /// of the identical run over the rebuilt snapshot.
    #[test]
    fn orchestrated_backends_are_bit_identical_over_overlay(
        g in arb_graph(),
        events in 1usize..60,
        delete_pct in 0u8..10,
        seed in 0u64..1000,
        k in 1usize..6,
        steps in 1usize..100,
        kind_ix in 0usize..3,
    ) {
        let batch = safe_batch(&g, events, delete_pct as f64 / 10.0, seed);
        let (client, rebuilt) = mutated_pair(&g, &batch);
        let starts = alive_starts(rebuilt.graph());
        if starts.is_empty() {
            return Ok(());
        }
        let kind = KINDS[kind_ix];
        let orch = WalkOrchestrator::new(k, steps, seed);
        let value = |v: NodeId| v.index() as f64;

        let mut a = endpoint(client.clone(), 2);
        let mut b = endpoint(rebuilt.clone(), 2);
        let coal_a = orch.run_coalesced(&mut a, make_fleet(kind, starts.clone()), value, &Never);
        let coal_b = orch.run_coalesced(&mut b, make_fleet(kind, starts.clone()), value, &Never);
        assert_reports_identical(&coal_a, &coal_b);

        let mut a = endpoint(client.clone(), k);
        let mut b = endpoint(rebuilt.clone(), k);
        let react_a = orch.run_reactor(&mut a, make_fleet(kind, starts.clone()), value, &Never);
        let react_b = orch.run_reactor(&mut b, make_fleet(kind, starts.clone()), value, &Never);
        assert_reports_identical(&react_a, &react_b);
    }

    /// Mid-walk mutation: apply the same batch to each backend's client at
    /// the same slice boundary, `invalidate_nodes` the touched set, and
    /// the three backends stay in lockstep — trace for trace, stop for
    /// stop. No dispatcher or reactor cache may serve a stale list.
    #[test]
    fn midwalk_mutation_keeps_backends_in_lockstep(
        g in arb_graph(),
        events in 1usize..40,
        delete_pct in 0u8..10,
        seed in 0u64..1000,
        k in 1usize..6,
        steps in 4usize..80,
        cut in 1usize..40,
        kind_ix in 0usize..3,
    ) {
        let batch = safe_batch(&g, events, delete_pct as f64 / 10.0, seed);
        let base = SimulatedOsn::from_graph(g.clone());
        let starts = alive_starts(&g);
        if starts.is_empty() {
            return Ok(());
        }
        // Mid-walk deletes must also never strand a *mutated* walker:
        // safe_batch keeps every endpoint's degree positive, which is
        // exactly the invariant the walkers need.
        let kind = KINDS[kind_ix];
        let orch = WalkOrchestrator::new(k, steps, seed);
        let value = |v: NodeId| v.index() as f64;
        let cut = cut.min(steps.saturating_sub(1)).max(1);

        // Serial.
        let mut sc = base.clone();
        let mut serial = orch.start_serial(make_fleet(kind, starts.clone()));
        serial.run_rounds(&mut sc, &value, cut);
        let touched = sc.apply_mutations(&batch);
        serial.invalidate_nodes(&touched);
        serial.run_rounds(&mut sc, &value, usize::MAX);
        let serial_report = serial.into_report(sc.stats());

        // Coalesced, lockstep shape (batch >= K): one round per event.
        let mut cc = endpoint(base.clone(), k);
        let mut coalesced = orch.start_coalesced(make_fleet(kind, starts.clone()));
        coalesced.run_rounds(&mut cc, &value, cut);
        let touched_c = cc.apply_mutations(&batch);
        prop_assert_eq!(&touched, &touched_c);
        coalesced.invalidate_nodes(&touched_c);
        coalesced.run_rounds(&mut cc, &value, usize::MAX);
        let coalesced_report = coalesced.into_report(&cc);

        // Reactor, same lockstep shape: slices quiesce in-flight I/O, so
        // `cut` events land on the same step boundary as `cut` rounds.
        let mut rc = endpoint(base.clone(), k);
        let mut reactor = orch.start_reactor(make_fleet(kind, starts.clone()));
        reactor.run_events(&mut rc, &value, cut);
        let touched_r = rc.apply_mutations(&batch);
        prop_assert_eq!(&touched, &touched_r);
        reactor.invalidate_nodes(&touched_r);
        reactor.run_events(&mut rc, &value, usize::MAX);
        let reactor_report = reactor.into_report(&rc);

        prop_assert_eq!(&serial_report.trace.per_walker, &coalesced_report.trace.per_walker);
        prop_assert_eq!(&serial_report.stops, &coalesced_report.stops);
        prop_assert_eq!(&coalesced_report.trace.per_walker, &reactor_report.trace.per_walker);
        prop_assert_eq!(&coalesced_report.stops, &reactor_report.stops);
        prop_assert_eq!(
            coalesced_report.estimate.mean().map(f64::to_bits),
            reactor_report.estimate.mean().map(f64::to_bits)
        );
    }
}

/// Theorem 4's exactly-once coverage restarts on the **post-mutation**
/// neighborhood after `invalidate_node`. The graph funnels every `0 → 1`
/// transit through one hot edge (as in `tests/circulation_props.rs`);
/// after mutating `N(1)` mid-walk and invalidating, windows of draws
/// following subsequent transits must be exact permutations of the *new*
/// `N(1)`.
#[test]
fn invalidation_restarts_coverage_on_the_new_neighborhood() {
    let g = osn_sampling::graph::GraphBuilder::new()
        .add_edge(0, 1)
        .add_edge(1, 2)
        .add_edge(1, 3)
        .add_edge(1, 4)
        .add_edge(2, 0)
        .add_edge(3, 0)
        .add_edge(4, 0)
        .add_edge(5, 0)
        .build()
        .unwrap();
    // Two mutation shapes: shrink N(1) by deleting {1,4}, grow it by
    // inserting {1,5}. Both change deg(1), so a stale circulation would
    // either repeat a neighbor or never draw the new one.
    let cases: [(EdgeMutation, Vec<u32>); 2] = [
        (
            EdgeMutation::delete(0.5, NodeId(1), NodeId(4)),
            vec![0, 2, 3],
        ),
        (
            EdgeMutation::insert(0.5, NodeId(1), NodeId(5)),
            vec![0, 2, 3, 4, 5],
        ),
    ];
    for (mutation, want) in cases {
        for seed in 0..12u64 {
            let mut client = SimulatedOsn::from_graph(g.clone());
            let mut rng = ChaCha12Rng::seed_from_u64(seed);
            let mut w = Cnrw::new(NodeId(0));
            // Track (predecessor, position) so a draw from the (0,1)
            // circulation is recognized even when the invalidation lands
            // while the walker is already sitting on node 1.
            let mut before = w.current();
            let mut pos = w.current();
            // Warm up: populate circulation state on the old neighborhood.
            for _ in 0..400 {
                let nxt = w.step(&mut client, &mut rng).unwrap();
                before = pos;
                pos = nxt;
            }
            let touched = client.apply_mutations(&[mutation]);
            let mut dropped = 0;
            for &v in &touched {
                dropped += w.invalidate_node(v);
            }
            assert!(dropped > 0, "warm walk must have had state to drop");
            // Every step taken from node 1 with predecessor 0 draws the
            // next element of the (0,1) circulation cycle — record them
            // all, starting from the very first post-invalidation draw.
            let mut after = Vec::new();
            while after.len() < 6 * want.len() {
                let nxt = w.step(&mut client, &mut rng).unwrap();
                if before == NodeId(0) && pos == NodeId(1) {
                    after.push(nxt);
                }
                before = pos;
                pos = nxt;
            }
            for win in after.chunks_exact(want.len()) {
                let mut ids: Vec<u32> = win.iter().map(|n| n.0).collect();
                ids.sort_unstable();
                assert_eq!(
                    ids, want,
                    "window not a cover of the new N(1) (seed {seed}, {mutation:?})"
                );
            }
        }
    }
}

/// The overlay is representation-generic: a directed snapshot patches
/// only the arc's source list, and the rebuilt `DirectedCsr` agrees with
/// the overlay read path arc for arc.
#[test]
fn directed_overlay_matches_rebuilt_directed_csr() {
    let base =
        DirectedCsr::from_arcs([(0, 1), (1, 2), (2, 0), (2, 3), (3, 0), (0, 4), (4, 2)]).unwrap();
    let mut overlay = DeltaOverlay::new();
    assert!(overlay.apply(&base, EdgeMutation::insert(0.1, NodeId(3), NodeId(4))));
    assert!(overlay.apply(&base, EdgeMutation::delete(0.2, NodeId(2), NodeId(0))));
    // Directed semantics: deleting 2 -> 0 must not touch 0's out-list.
    assert!(overlay.has_edge(&base, NodeId(0), NodeId(1)));
    assert!(!overlay.has_edge(&base, NodeId(2), NodeId(0)));
    let rebuilt = base.rebuilt(&overlay).unwrap();
    for v in 0..base.node_count() as u32 {
        assert_eq!(
            overlay.neighbors(&base, NodeId(v)),
            rebuilt.neighbor_slice(NodeId(v)),
            "out-list of {v} diverged"
        );
    }
}
