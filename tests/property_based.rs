//! Property-based tests over random graphs and walk configurations.
//!
//! These exercise the core invariants on arbitrary topologies:
//! * builders always produce simple, symmetric CSR graphs;
//! * circulation covers each neighbor exactly once per cycle on any graph;
//! * every walker stays on edges of the graph and respects budgets;
//! * the ratio estimator is exact under exact degree-proportional visits.

use proptest::prelude::*;

use std::sync::Arc;

use osn_sampling::graph::analysis::components::is_connected;
use osn_sampling::graph::generators::erdos_renyi;
use osn_sampling::prelude::*;

/// Strategy: a connected random graph with 5..60 nodes.
fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (5usize..60, 0u64..1000).prop_map(|(n, seed)| {
        // Density above the connectivity threshold most of the time; the
        // generator stitches the rest.
        let p = (2.0 * (n as f64).ln() / n as f64).min(0.9);
        erdos_renyi(n, p, seed).expect("valid config")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_graphs_are_simple_and_symmetric(g in arb_graph()) {
        prop_assert!(is_connected(&g));
        for v in g.nodes() {
            let ns = g.neighbors(v);
            // sorted, no dup, no self-loop
            prop_assert!(ns.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(!ns.contains(&v));
            for &u in ns {
                prop_assert!(g.has_edge(u, v));
            }
        }
        let total: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(total, 2 * g.edge_count());
    }

    #[test]
    fn walkers_only_traverse_real_edges(
        g in arb_graph(),
        seed in 0u64..500,
        algo in 0usize..6,
    ) {
        let network = Arc::new(osn_sampling::graph::attributes::AttributedGraph::bare(g));
        let start = NodeId(0);
        let mut walker: Box<dyn RandomWalk> = match algo {
            0 => Box::new(Srw::new(start)),
            1 => Box::new(Mhrw::new(start)),
            2 => Box::new(NbSrw::new(start)),
            3 => Box::new(Cnrw::new(start)),
            4 => Box::new(Gnrw::new(start, Box::new(ByDegree::new()))),
            _ => Box::new(NbCnrw::new(start)),
        };
        let mut client = SimulatedOsn::new_shared(network.clone());
        let trace = WalkSession::new(WalkConfig::steps(200).with_seed(seed))
            .run(walker.as_mut(), &mut client);
        let mut prev = trace.start;
        for &v in trace.nodes() {
            prop_assert!(
                v == prev || network.graph.has_edge(prev, v),
                "illegal move {prev} -> {v}"
            );
            prev = v;
        }
    }

    #[test]
    fn budget_is_never_exceeded(
        g in arb_graph(),
        budget in 1u64..40,
        seed in 0u64..200,
    ) {
        let n = g.node_count();
        let network = Arc::new(osn_sampling::graph::attributes::AttributedGraph::bare(g));
        let client = SimulatedOsn::new_shared(network);
        let mut client = BudgetedClient::new(client, budget, n);
        let mut walker = Cnrw::new(NodeId(0));
        let trace = WalkSession::new(WalkConfig::steps(50_000).with_seed(seed))
            .run(&mut walker, &mut client);
        prop_assert!(trace.stats.unique <= budget);
    }

    #[test]
    fn ratio_estimator_exact_under_exact_stationary_visits(
        g in arb_graph(),
    ) {
        // Visit node v exactly deg(v) times: the empirical distribution is
        // exactly pi. The ratio estimator must recover the exact average
        // degree.
        let mut est = RatioEstimator::new();
        for v in g.nodes() {
            let k = g.degree(v);
            for _ in 0..k {
                est.push(k as f64, k);
            }
        }
        let truth = g.average_degree();
        let got = est.average_degree().unwrap();
        prop_assert!((got - truth).abs() < 1e-9, "{} vs {}", got, truth);
    }

    #[test]
    fn cnrw_circulation_covers_neighbors_once_per_cycle(
        g in arb_graph(),
        seed in 0u64..100,
    ) {
        use osn_sampling::walks::history::CirculationSet;
        use rand::SeedableRng;
        // Pick the highest-degree node's neighbor list as the population.
        let v = g.nodes().max_by_key(|&v| g.degree(v)).unwrap();
        let population = g.neighbors(v);
        let mut c = CirculationSet::default();
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(seed);
        for _ in 0..3 {
            let mut seen = std::collections::HashSet::new();
            for _ in 0..population.len() {
                let d = c.draw(population, &mut rng).unwrap();
                prop_assert!(seen.insert(d), "repeat within a cycle");
            }
        }
    }
}
