//! The reactor backend's determinism/equivalence pin (see
//! `osn_sampling::walks::reactor`).
//!
//! Three equivalence arms, each a property over arbitrary graphs, fleet
//! sizes, budgets, and endpoint shapes:
//!
//! * **Arm A — schedule independence.** Under [`Never`] with no budget,
//!   traces depend only on the walk randomness, not on how I/O is
//!   scheduled: for *any* batch shape, latency model, whole-request
//!   failure injection, and per-id drops (as long as nothing is
//!   abandoned), the reactor reproduces the coalesced run's traces,
//!   stops, and estimate bit-for-bit.
//! * **Arm B — lockstep bit-identity.** With `max_batch_size >= K` every
//!   reactor event is one coalesced round, so the *entire* report —
//!   charges, interface accounting, refusals under a budget, round
//!   counts — is identical.
//! * **Arm C — restart schedules.** The lockstep equivalence extends to
//!   [`WorkStealing`]: the full restart schedule (who, when, where to)
//!   matches the coalesced run's.
//!
//! Plus seeded determinism (same seed → same run, different seed →
//! different run) and a 10k-walker case witnessing the O(active batches)
//! memory bound.

use proptest::prelude::*;

use osn_sampling::graph::generators::erdos_renyi;
use osn_sampling::prelude::*;
use osn_sampling::walks::OrchestratorReport;

/// A connected random graph with 5..60 nodes (same recipe as
/// `tests/property_based.rs`).
fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (5usize..60, 0u64..1000).prop_map(|(n, seed)| {
        let p = (2.0 * (n as f64).ln() / n as f64).min(0.9);
        erdos_renyi(n, p, seed).expect("valid config")
    })
}

/// An endpoint shape: batch size, in-flight window, latency, jitter,
/// per-id latency, whole-request failure cadence, per-id drop cadence.
#[derive(Clone, Debug)]
struct Shape {
    batch: usize,
    window: usize,
    latency: (f64, f64),
    per_id: f64,
    failure_every: u64,
    drop_every: u64,
}

fn arb_shape() -> impl Strategy<Value = Shape> {
    (
        1usize..12,
        1usize..5,
        (0u8..3, 0u8..3),
        0u8..2,
        // 0 or 1 disables the fault; >= 2 is a live cadence.
        0u64..9,
        0u64..9,
    )
        .prop_map(
            |(batch, window, (lat, jit), per_id, failure_every, drop_every)| Shape {
                batch,
                window,
                latency: (lat as f64 * 0.01, jit as f64 * 0.002),
                per_id: per_id as f64 * 0.001,
                failure_every: if failure_every < 2 { 0 } else { failure_every },
                drop_every: if drop_every < 2 { 0 } else { drop_every },
            },
        )
}

fn endpoint(g: &CsrGraph, shape: &Shape, budget: Option<u64>) -> SimulatedBatchOsn {
    let mut config = BatchConfig::new(shape.batch)
        .with_in_flight(shape.window)
        .with_latency(shape.latency.0, shape.latency.1)
        .with_per_id_latency(shape.per_id)
        .with_seed(5);
    if shape.failure_every > 0 {
        config = config.with_failure_every(shape.failure_every);
    }
    if shape.drop_every > 0 {
        config = config.with_drop_node_every(shape.drop_every);
    }
    SimulatedBatchOsn::configured(SimulatedOsn::from_graph(g.clone()), config, budget)
}

fn make_cnrw(n: usize) -> impl Fn(usize, HistoryBackend) -> Box<dyn RandomWalk + Send> {
    move |i, backend| {
        Box::new(Cnrw::with_backend(NodeId(((i * 13) % n) as u32), backend))
            as Box<dyn RandomWalk + Send>
    }
}

/// Full-report equality: traces, stops, walker-side stats, interface-side
/// stats, estimate, refusal/abandonment accounting, restart schedule.
fn assert_reports_identical(a: &OrchestratorReport, b: &OrchestratorReport) {
    assert_eq!(a.trace.per_walker, b.trace.per_walker);
    assert_eq!(a.stops, b.stops);
    assert_eq!(a.trace.stats, b.trace.stats);
    assert_eq!(a.interface, b.interface);
    assert_eq!(a.restarts, b.restarts);
    assert_eq!(a.refused_nodes, b.refused_nodes);
    assert_eq!(a.abandoned_nodes, b.abandoned_nodes);
    assert_eq!(
        a.estimate.mean().map(f64::to_bits),
        b.estimate.mean().map(f64::to_bits)
    );
    assert_eq!(a.estimate.count(), b.estimate.count());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arm A: under `Never` with no budget, traces are schedule-independent
    /// — any batch shape, any latency, any recoverable fault pattern.
    #[test]
    fn arm_a_traces_survive_any_endpoint_shape(
        g in arb_graph(),
        shape in arb_shape(),
        k in 1usize..8,
        steps in 1usize..120,
        seed in 0u64..500,
    ) {
        let n = g.node_count();
        let orch = WalkOrchestrator::new(k, steps, seed);

        let mut reference = endpoint(&g, &shape, None);
        let coalesced =
            orch.run_coalesced(&mut reference, make_cnrw(n), |v| v.index() as f64, &Never);
        let mut subject = endpoint(&g, &shape, None);
        let reactor =
            orch.run_reactor(&mut subject, make_cnrw(n), |v| v.index() as f64, &Never);

        // Abandonment (a node dropped past the attempt cap) is the one
        // fault that may legitimately alter a trajectory; skip such cases.
        if coalesced.abandoned_nodes > 0 || reactor.abandoned_nodes > 0 {
            return Ok(());
        }

        prop_assert_eq!(&coalesced.trace.per_walker, &reactor.trace.per_walker);
        prop_assert_eq!(&coalesced.stops, &reactor.stops);
        prop_assert_eq!(coalesced.trace.stats, reactor.trace.stats);
        prop_assert_eq!(
            coalesced.estimate.mean().map(f64::to_bits),
            reactor.estimate.mean().map(f64::to_bits)
        );
    }

    /// Arm B: with `max_batch_size >= K` every event is one coalesced
    /// round — the whole report is bit-identical, budget included.
    #[test]
    fn arm_b_lockstep_is_bit_identical_with_budget(
        g in arb_graph(),
        k in 1usize..10,
        steps in 1usize..150,
        seed in 0u64..500,
        // < 5 means unlimited; otherwise a live shared budget.
        raw_budget in 0u64..200,
        latency in 0u8..3,
    ) {
        let budget = (raw_budget >= 5).then_some(raw_budget);
        let n = g.node_count();
        let orch = WalkOrchestrator::new(k, steps, seed);
        let shape = Shape {
            batch: k.max(1),
            window: 4,
            latency: (latency as f64 * 0.01, 0.002),
            per_id: 0.0,
            failure_every: 0,
            drop_every: 0,
        };

        let mut reference = endpoint(&g, &shape, budget);
        let coalesced =
            orch.run_coalesced(&mut reference, make_cnrw(n), |v| v.index() as f64, &Never);
        let mut subject = endpoint(&g, &shape, budget);
        let (reactor, stats) = orch.run_reactor_with_stats(
            &mut subject,
            make_cnrw(n),
            |v| v.index() as f64,
            &Never,
        );

        assert_reports_identical(&coalesced, &reactor);
        prop_assert_eq!(coalesced.rounds, stats.events);
    }

    /// Arm C: the lockstep equivalence extends to `WorkStealing` — the
    /// restart schedule matches the coalesced run's, restart for restart.
    #[test]
    fn arm_c_work_stealing_schedules_match(
        g in arb_graph(),
        k in 2usize..8,
        steps in 50usize..250,
        seed in 0u64..500,
        threshold in 0u8..3,
    ) {
        let n = g.node_count();
        let orch = WalkOrchestrator::new(k, steps, seed);
        let shape = Shape {
            batch: k,
            window: 4,
            latency: (0.0, 0.0),
            per_id: 0.0,
            failure_every: 0,
            drop_every: 0,
        };
        let rhat = 1.02 + threshold as f64 * 0.04;

        let mut reference = endpoint(&g, &shape, None);
        let policy = WorkStealing::new(rhat, 16, SharedFrontier::with_stripes(8, 16));
        let coalesced =
            orch.run_coalesced(&mut reference, make_cnrw(n), |v| v.index() as f64, &policy);
        let mut subject = endpoint(&g, &shape, None);
        let policy2 = WorkStealing::new(rhat, 16, SharedFrontier::with_stripes(8, 16));
        let reactor =
            orch.run_reactor(&mut subject, make_cnrw(n), |v| v.index() as f64, &policy2);

        assert_reports_identical(&coalesced, &reactor);
    }

    /// Seeded determinism: the reactor is a pure function of (spec, seed,
    /// endpoint config) — and the seed actually matters.
    #[test]
    fn seeds_pin_and_distinguish_runs(
        g in arb_graph(),
        shape in arb_shape(),
        k in 2usize..6,
        seed in 0u64..500,
    ) {
        let n = g.node_count();
        let run = |s: u64| {
            let orch = WalkOrchestrator::new(k, 80, s);
            let mut client = endpoint(&g, &shape, None);
            orch.run_reactor(&mut client, make_cnrw(n), |v| v.index() as f64, &Never)
        };
        let first = run(seed);
        let again = run(seed);
        prop_assert_eq!(&first.trace.per_walker, &again.trace.per_walker);
        prop_assert_eq!(first.interface, again.interface);
        prop_assert_eq!(
            first.estimate.mean().map(f64::to_bits),
            again.estimate.mean().map(f64::to_bits)
        );
        let other = run(seed ^ 0xdead_beef);
        prop_assert!(
            first.trace.per_walker != other.trace.per_walker,
            "different seeds produced identical traces"
        );
    }
}

/// The issue's headline: 10k+ walkers through one reactor loop, bit-
/// identical to the coalesced run, with in-flight memory bounded by the
/// endpoint's window — not the fleet size.
#[test]
fn ten_thousand_walkers_match_coalesced_bit_identically() {
    let g = erdos_renyi(2000, 0.01, 77).unwrap();
    let n = g.node_count();
    let k = 10_000;
    let orch = WalkOrchestrator::new(k, 8, 1234);
    let shape = Shape {
        batch: k,
        window: 4,
        latency: (0.005, 0.001),
        per_id: 0.0,
        failure_every: 0,
        drop_every: 0,
    };

    let mut reference = endpoint(&g, &shape, None);
    let coalesced = orch.run_coalesced(&mut reference, make_cnrw(n), |v| v.index() as f64, &Never);
    let mut subject = endpoint(&g, &shape, None);
    let (reactor, stats) =
        orch.run_reactor_with_stats(&mut subject, make_cnrw(n), |v| v.index() as f64, &Never);

    assert_reports_identical(&coalesced, &reactor);
    assert_eq!(coalesced.rounds, stats.events);
    assert_eq!(reactor.trace.per_walker.len(), k);
    // The memory bound: in-flight batches track the endpoint window, and
    // at least once the whole 10k fleet was parked on pending I/O.
    assert!(
        stats.peak_in_flight <= shape.window,
        "peak in-flight {} exceeds the {}-batch window",
        stats.peak_in_flight,
        shape.window
    );
    assert!(stats.peak_parked > 0, "nothing ever parked");
}
