//! Fault-injection tests for the reactor backend, mirroring
//! `tests/batch_faults.rs` through the poll-driven event loop:
//!
//! * per-id drops and whole-request failures are **invisible to the
//!   trajectories** — the retry/requeue machinery never changes a step,
//!   never double-charges, never loses a walker;
//! * heterogeneous per-batch latency reorders *events*, never *traces*
//!   (schedule independence under [`Never`] with no budget);
//! * budget refusals under [`WorkStealing`] rescue walkers into cached
//!   territory via the [`SharedFrontier`] instead of terminating them;
//! * an endpoint that fails **every** attempt terminates the whole fleet
//!   with bounded attempts and nothing charged — no hang, no spin.

use std::sync::Arc;

use osn_sampling::graph::attributes::AttributedGraph;
use osn_sampling::prelude::*;
use osn_sampling::walks::{RestartReason, WalkStop};

fn clustered_network() -> Arc<AttributedGraph> {
    Arc::new(osn_sampling::datasets::clustered_graph().network)
}

fn make_cnrw(n: usize) -> impl Fn(usize, HistoryBackend) -> Box<dyn RandomWalk + Send> {
    move |i, backend| {
        Box::new(Cnrw::with_backend(NodeId(((i * 17) % n) as u32), backend))
            as Box<dyn RandomWalk + Send>
    }
}

#[test]
fn reactor_drops_and_failures_are_invisible_to_trajectories() {
    let network = clustered_network();
    let n = network.graph.node_count();
    let orch = WalkOrchestrator::new(6, 400, 9);
    let run = |config: BatchConfig| {
        let mut client = SimulatedBatchOsn::new(SimulatedOsn::new_shared(network.clone()), config);
        let report = orch.run_reactor(&mut client, make_cnrw(n), |v| v.index() as f64, &Never);
        (report, client.batch_stats(), client.stats())
    };

    let reliable = BatchConfig::new(4).with_in_flight(3);
    let flaky = reliable
        .clone()
        .with_failure_every(3)
        .with_drop_node_every(5)
        .with_max_retries(2)
        .with_seed(7);
    let (clean, _, clean_iface) = run(reliable);
    let (faulty, faulty_stats, faulty_iface) = run(flaky);

    // Both fault models actually fired.
    assert!(faulty_stats.retries > 0, "whole-request failures never hit");
    assert!(faulty_stats.node_drops > 0, "per-id drops never hit");

    // No walker lost a step, no trajectory changed, no extra charge.
    assert_eq!(faulty.trace.per_walker, clean.trace.per_walker);
    assert_eq!(faulty.stops, clean.stops);
    assert_eq!(faulty_iface.unique, clean_iface.unique);
    assert_eq!(faulty.abandoned_nodes, 0);
    for (i, trace) in faulty.trace.per_walker.iter().enumerate() {
        assert_eq!(trace.len(), 400, "walker {i} lost steps to faults");
    }
}

#[test]
fn heterogeneous_latency_reorders_events_not_traces() {
    // Three endpoints with wildly different timing models: batch latency,
    // per-id latency, heavy jitter. Completion order — and therefore the
    // reactor's event schedule — differs, but every trajectory is the
    // same, because under `Never` with no budget the walk depends only on
    // the walk randomness.
    let network = clustered_network();
    let n = network.graph.node_count();
    let orch = WalkOrchestrator::new(5, 300, 21);
    let run = |config: BatchConfig| {
        let mut client = SimulatedBatchOsn::new(SimulatedOsn::new_shared(network.clone()), config);
        let (report, stats) =
            orch.run_reactor_with_stats(&mut client, make_cnrw(n), |v| v.index() as f64, &Never);
        (report, stats, client.clock().elapsed_secs())
    };

    let (flat, _, _) = run(BatchConfig::new(3).with_in_flight(2));
    let (slow, slow_stats, slow_elapsed) = run(BatchConfig::new(3)
        .with_in_flight(2)
        .with_latency(0.5, 0.4)
        .with_per_id_latency(0.05)
        .with_seed(3));
    let (jittery, _, _) = run(BatchConfig::new(3)
        .with_in_flight(2)
        .with_latency(0.01, 0.25)
        .with_seed(8));

    assert!(slow_elapsed > 0.0, "latency model must advance the clock");
    assert!(slow_stats.peak_in_flight > 1, "window should pipeline");
    assert_eq!(flat.trace.per_walker, slow.trace.per_walker);
    assert_eq!(flat.trace.per_walker, jittery.trace.per_walker);
    assert_eq!(flat.stops, slow.stops);
    assert_eq!(flat.stops, jittery.stops);
}

#[test]
fn budget_refusals_rescue_via_the_shared_frontier() {
    // A tight shared budget refuses walkers mid-walk; under WorkStealing
    // the reactor must rescue them into territory the fleet already paid
    // for instead of stopping them at the first refusal.
    let network = clustered_network();
    let n = network.graph.node_count();
    let orch = WalkOrchestrator::new(6, 2000, 5);
    let policy = WorkStealing::new(1.05, 16, SharedFrontier::with_stripes(8, 16));
    let mut client = SimulatedBatchOsn::configured(
        SimulatedOsn::new_shared(network.clone()),
        BatchConfig::new(8).with_in_flight(3),
        Some(45),
    );
    let report = orch.run_reactor(&mut client, make_cnrw(n), |v| v.index() as f64, &policy);

    assert_eq!(client.remaining_budget(), Some(0), "budget must bind");
    let rescues = report
        .restarts
        .iter()
        .filter(|r| r.reason == RestartReason::Refused)
        .count();
    assert!(rescues > 0, "no refused walker was rescued");
    // Rescued walkers kept walking: some trace extends past its rescue step.
    assert!(
        report
            .restarts
            .iter()
            .filter(|r| r.reason == RestartReason::Refused)
            .any(|r| report.trace.per_walker[r.walker].len() > r.step),
        "rescue never bought another step"
    );
    // The run still terminates with every walker settled.
    assert_eq!(report.stops.len(), 6);
    assert!(report.refused_nodes > 0);
    // Rescues only relocate into already-cached nodes: nothing about the
    // rescue machinery can leak past the exhausted budget.
    assert_eq!(client.stats().unique, 45);
}

#[test]
fn always_failing_endpoint_terminates_with_bounded_attempts() {
    // failure_every = 1 with zero retries: every request permanently
    // drops. The reactor must abandon each node at its resubmission cap
    // and settle every walker — not hang, not spin, not charge.
    let network = clustered_network();
    let orch = WalkOrchestrator::new(3, 100, 2);
    let mut client = SimulatedBatchOsn::new(
        SimulatedOsn::new_shared(network.clone()),
        BatchConfig::new(4)
            .with_failure_every(1)
            .with_max_retries(0),
    );
    let mut run = orch
        .start_reactor(|i, backend| {
            Box::new(Cnrw::with_backend(NodeId(i as u32), backend)) as Box<dyn RandomWalk + Send>
        })
        .with_node_attempt_cap(4);
    let value = |v: NodeId| v.index() as f64;
    while !run.done() {
        run.run_events(&mut client, &value, usize::MAX);
    }
    let report = run.into_report(&client);

    assert_eq!(report.abandoned_nodes, 3, "every start node abandoned");
    assert!(report.trace.per_walker.iter().all(Vec::is_empty));
    assert!(report.stops.iter().all(|s| *s == WalkStop::BudgetExhausted));
    assert_eq!(client.stats().unique, 0, "nothing was ever charged");
    // Bounded work: the 3 start nodes coalesce into one batch (B = 4)
    // resubmitted up to the 4-resubmission cap, one attempt each.
    assert_eq!(client.batch_stats().attempts, 4);
    assert_eq!(client.batch_stats().dropped, 4);
}
