//! Golden-trace regression test for the reactor backend.
//!
//! A committed fixture (`tests/fixtures/cnrw_reactor_clustered.txt`) pins
//! the exact node sequences of three CNRW walkers driven by the poll-driven
//! reactor over the clustered graph — narrow batches, a small in-flight
//! window, heterogeneous latency, and fault injection, so events genuinely
//! interleave. Any future reactor refactor that reorders event delivery,
//! RNG consumption, or the queue discipline in a way that leaks into
//! trajectories, event counts, or charged accounting will fail this test
//! instead of silently drifting.
//!
//! To regenerate after an *intentional* behavior change:
//!
//! ```text
//! UPDATE_FIXTURES=1 cargo test --test reactor_golden_trace
//! ```
//!
//! and commit the diff with an explanation of why the trace moved.

use std::fmt::Write as _;
use std::sync::Arc;

use osn_sampling::prelude::*;

const WALKERS: usize = 3;
const STEPS: usize = 40;
const SEED: u64 = 0xEAC7;
const FIXTURE: &str = "tests/fixtures/cnrw_reactor_clustered.txt";

fn render_golden() -> String {
    let network = Arc::new(osn_sampling::datasets::clustered_graph().network);
    let n = network.graph.node_count();
    let config = BatchConfig::new(2)
        .with_in_flight(3)
        .with_latency(0.02, 0.005)
        .with_per_id_latency(0.002)
        .with_failure_every(7)
        .with_drop_node_every(11)
        .with_max_retries(2)
        .with_seed(13);
    let mut client = SimulatedBatchOsn::new(SimulatedOsn::new_shared(network.clone()), config);
    let orch = WalkOrchestrator::new(WALKERS, STEPS, SEED);
    let (report, stats) = orch.run_reactor_with_stats(
        &mut client,
        |i, backend| {
            Box::new(Cnrw::with_backend(NodeId(((i * 17) % n) as u32), backend))
                as Box<dyn RandomWalk + Send>
        },
        |v| v.index() as f64,
        &Never,
    );
    let batch = client.batch_stats();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# CNRW over the clustered graph through the poll-driven reactor."
    );
    let _ = writeln!(
        out,
        "# {WALKERS} walkers x {STEPS} steps, batch size 2, in-flight window 3,"
    );
    let _ = writeln!(
        out,
        "# latency 0.02s +/- 0.005s jitter + 0.002s/id, failure every 7th attempt,"
    );
    let _ = writeln!(
        out,
        "# per-id drop every 11th delivery, 2 retries, run seed {SEED:#x}."
    );
    let _ = writeln!(
        out,
        "# Regenerate: UPDATE_FIXTURES=1 cargo test --test reactor_golden_trace"
    );
    for (i, trace) in report.trace.per_walker.iter().enumerate() {
        let nodes: Vec<String> = trace.iter().map(|v| v.0.to_string()).collect();
        let _ = writeln!(out, "walker{i}: {}", nodes.join(" "));
    }
    let _ = writeln!(
        out,
        "charged_unique: {}",
        report
            .interface
            .expect("reactor reports interface stats")
            .unique
    );
    let _ = writeln!(out, "events: {}", stats.events);
    let _ = writeln!(out, "peak_in_flight: {}", stats.peak_in_flight);
    let _ = writeln!(out, "requests: {}", batch.submitted);
    let _ = writeln!(out, "attempts: {}", batch.attempts);
    let _ = writeln!(out, "retries: {}", batch.retries);
    let _ = writeln!(out, "node_drops: {}", batch.node_drops);
    out
}

#[test]
fn reactor_cnrw_reproduces_committed_golden_trace() {
    let fixture_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(FIXTURE);
    let rendered = render_golden();
    if std::env::var_os("UPDATE_FIXTURES").is_some() {
        std::fs::write(&fixture_path, &rendered).expect("write fixture");
    }
    let committed = std::fs::read_to_string(&fixture_path)
        .expect("fixture missing — run with UPDATE_FIXTURES=1 to create it");
    assert_eq!(
        rendered, committed,
        "reactor CNRW trace diverged from the committed fixture; if the change \
         is intentional, regenerate with UPDATE_FIXTURES=1 and explain the move"
    );
}
