//! Snapshot/resume round-trip property tests for every walker.
//!
//! The contract pinned here is the foundation of the service layer's
//! kill-and-resume story: snapshot a walker at an **arbitrary** step `k`
//! (serializing through the `osn-serde` text form, exactly as a server
//! would persist it), restore into a freshly constructed walker plus a
//! state-restored RNG, and the continued trace must be **bit-identical**
//! to the uninterrupted run — for every algorithm and both history
//! backends, including mid-cycle circulation state and promoted arena
//! slices.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

use osn_sampling::prelude::*;
use osn_sampling::serde::Value;

/// A 60-node graph with hubs (degree ≫ `INLINE_CAP`) so circulation
/// states exercise all three arena stages (inline, spill, promoted)
/// within a few hundred steps.
fn test_graph() -> CsrGraph {
    let mut b = GraphBuilder::new();
    for i in 0..60u32 {
        b.push_edge(i, (i + 1) % 60);
        b.push_edge(i, (i * 7 + 3) % 60);
    }
    // Hubs: node 0 reaches every third node, node 1 every fifth.
    for i in (3..60u32).step_by(3) {
        b.push_edge(0, i);
    }
    for i in (5..60u32).step_by(5) {
        b.push_edge(1, i);
    }
    b.build().unwrap()
}

type Make = Box<dyn Fn() -> Box<dyn RandomWalk>>;

/// Every walker × backend combination under test, with a stable label.
fn walker_zoo() -> Vec<(String, Make)> {
    let mut zoo: Vec<(String, Make)> = vec![
        ("SRW".into(), Box::new(|| Box::new(Srw::new(NodeId(0))))),
        ("MHRW".into(), Box::new(|| Box::new(Mhrw::new(NodeId(0))))),
        (
            "NB-SRW".into(),
            Box::new(|| Box::new(NbSrw::new(NodeId(0)))),
        ),
    ];
    for backend in HistoryBackend::ALL {
        zoo.push((
            format!("CNRW/{backend}"),
            Box::new(move || Box::new(Cnrw::with_backend(NodeId(0), backend))),
        ));
        zoo.push((
            format!("CNRW-node/{backend}"),
            Box::new(move || Box::new(NodeCnrw::with_backend(NodeId(0), backend))),
        ));
        zoo.push((
            format!("NB-CNRW/{backend}"),
            Box::new(move || Box::new(NbCnrw::with_backend(NodeId(0), backend))),
        ));
        zoo.push((
            format!("GNRW/{backend}"),
            Box::new(move || {
                Box::new(Gnrw::with_backend(
                    NodeId(0),
                    Box::new(ByDegree::log2()),
                    backend,
                ))
            }),
        ));
    }
    zoo
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn resume_at_arbitrary_step_is_bit_identical(
        w in 0usize..11,
        k in 0usize..300,
        seed in 0u64..5000,
    ) {
        let zoo = walker_zoo();
        let (name, make) = &zoo[w];
        let tail_len = 150usize;

        // Uninterrupted reference run.
        let mut client = SimulatedOsn::from_graph(test_graph());
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let mut walker = make();
        let mut full = Vec::with_capacity(k + tail_len);
        for _ in 0..k + tail_len {
            full.push(walker.step(&mut client, &mut rng).unwrap());
        }

        // Same run, killed at step k: snapshot through the serialized text
        // form (as the job server persists it), then resume in a fresh
        // walker + state-restored RNG and a cold client.
        let mut client = SimulatedOsn::from_graph(test_graph());
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let mut walker = make();
        let mut trace = Vec::with_capacity(k + tail_len);
        for _ in 0..k {
            trace.push(walker.step(&mut client, &mut rng).unwrap());
        }
        let snapshot = walker.export_state().to_pretty();
        let rng_words = rng.get_state();
        drop(walker);

        let parsed = Value::parse(&snapshot).map_err(|e| format!("{name}: {e}"))?;
        let mut resumed = make();
        resumed
            .import_state(&parsed)
            .map_err(|e| format!("{name}: import failed: {e}"))?;
        prop_assert_eq!(
            resumed.current(),
            *full.get(k.wrapping_sub(1)).unwrap_or(&NodeId(0)),
            "{}: position after import", name
        );
        let mut rng = ChaCha12Rng::from_state(rng_words);
        let mut client = SimulatedOsn::from_graph(test_graph());
        for _ in 0..tail_len {
            trace.push(resumed.step(&mut client, &mut rng).unwrap());
        }
        prop_assert_eq!(&trace, &full, "{}: resumed trace diverged (k={})", name, k);
    }
}

/// A seeded mutation schedule over `g`, split at the half-way timestamp
/// into two *effective* batches (deletes that would strand a walker on a
/// degree-zero node are filtered out).
fn split_batches(g: &CsrGraph, events: usize, seed: u64) -> (Vec<EdgeMutation>, Vec<EdgeMutation>) {
    let spec = ScheduleSpec::new(events, 2.0, seed).with_delete_fraction(0.4);
    let schedule = MutationSchedule::generate(g, &spec);
    let mut overlay = DeltaOverlay::new();
    let (mut first, mut second) = (Vec::new(), Vec::new());
    for &m in schedule.events() {
        if m.op == MutationOp::Delete
            && (overlay.degree(g, m.u) <= 1 || overlay.degree(g, m.v) <= 1)
        {
            continue;
        }
        if overlay.apply(g, m) {
            if m.at <= 1.0 {
                first.push(m);
            } else {
                second.push(m);
            }
        }
    }
    (first, second)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Kill-and-resume **mid mutation schedule**: a reactor fleet walks
    /// while seeded batches mutate the endpoint's overlay between event
    /// slices. Snapshotting after the first batch (run state and endpoint
    /// state both through the serialized text form), resuming over a
    /// pristine endpoint, and replaying the rest of the schedule yields
    /// traces bit-identical to the uninterrupted run — the overlay log
    /// rides the endpoint snapshot and the invalidated circulation state
    /// rides the walker snapshots.
    #[test]
    fn reactor_resume_mid_mutation_schedule_is_bit_identical(
        seed in 0u64..2000,
        k in 1usize..5,
        steps in 8usize..60,
        e1 in 1usize..24,
        e2 in 1usize..24,
        events in 4usize..40,
    ) {
        let g = test_graph();
        let (batch1, batch2) = split_batches(&g, events, seed ^ 0x5EED);
        let make_endpoint = || {
            SimulatedBatchOsn::new(
                SimulatedOsn::from_graph(g.clone()),
                BatchConfig::new(2).with_in_flight(3).with_latency(0.01, 0.002).with_seed(9),
            )
        };
        let make = |i: usize, backend: HistoryBackend| {
            Box::new(Cnrw::with_backend(NodeId(((i * 7) % 60) as u32), backend))
                as Box<dyn RandomWalk + Send>
        };
        let value = |v: NodeId| v.index() as f64;
        let orch = WalkOrchestrator::new(k, steps, seed);

        // Uninterrupted reference: slice, mutate, slice, mutate, finish.
        let mut client = make_endpoint();
        let mut run = orch.start_reactor(make);
        run.run_events(&mut client, &value, e1);
        let touched = client.apply_mutations(&batch1);
        run.invalidate_nodes(&touched);
        run.run_events(&mut client, &value, e2);
        let touched = client.apply_mutations(&batch2);
        run.invalidate_nodes(&touched);
        run.run_events(&mut client, &value, usize::MAX);
        let full = run.into_report(&client);

        // Killed after the first batch + e2 more events, persisted as text.
        let mut client = make_endpoint();
        let mut run = orch.start_reactor(make);
        run.run_events(&mut client, &value, e1);
        let touched = client.apply_mutations(&batch1);
        run.invalidate_nodes(&touched);
        run.run_events(&mut client, &value, e2);
        let run_text = run.snapshot().to_pretty();
        let client_text = client
            .export_state()
            .map_err(|e| format!("export: {e}"))?
            .to_pretty();
        drop(run);
        drop(client);

        // Resume over a pristine endpoint and replay the schedule's tail.
        let mut client = make_endpoint();
        client
            .import_state(&Value::parse(&client_text).map_err(|e| e.to_string())?)
            .map_err(|e| format!("import: {e}"))?;
        prop_assert_eq!(client.inner().mutation_log(), batch1.as_slice());
        let mut run = orch
            .resume_reactor(&Value::parse(&run_text).map_err(|e| e.to_string())?, make)
            .map_err(|e| format!("resume: {e}"))?;
        let touched = client.apply_mutations(&batch2);
        run.invalidate_nodes(&touched);
        run.run_events(&mut client, &value, usize::MAX);
        let resumed = run.into_report(&client);

        prop_assert_eq!(&resumed.trace.per_walker, &full.trace.per_walker);
        prop_assert_eq!(&resumed.stops, &full.stops);
        prop_assert_eq!(resumed.trace.stats, full.trace.stats);
        prop_assert_eq!(
            resumed.estimate.mean().map(f64::to_bits),
            full.estimate.mean().map(f64::to_bits)
        );
    }
}

#[test]
fn snapshot_text_is_deterministic() {
    // Hash-map iteration order must never leak into the serialized form:
    // two walkers driven identically export identical bytes.
    for (name, make) in &walker_zoo() {
        let run = || {
            let mut client = SimulatedOsn::from_graph(test_graph());
            let mut rng = ChaCha12Rng::seed_from_u64(11);
            let mut walker = make();
            for _ in 0..400 {
                walker.step(&mut client, &mut rng).unwrap();
            }
            walker.export_state().to_pretty()
        };
        assert_eq!(run(), run(), "{name}: non-deterministic snapshot");
    }
}

#[test]
fn backend_mismatch_is_rejected() {
    let arena_snap = Cnrw::with_backend(NodeId(0), HistoryBackend::Arena).export_state();
    let mut legacy = Cnrw::with_backend(NodeId(0), HistoryBackend::Legacy);
    let err = legacy.import_state(&arena_snap).unwrap_err();
    assert!(err.contains("backend mismatch"), "unexpected error: {err}");

    let legacy_snap = Gnrw::with_backend(
        NodeId(0),
        Box::new(ByDegree::log2()),
        HistoryBackend::Legacy,
    )
    .export_state();
    let mut arena = Gnrw::new(NodeId(0), Box::new(ByDegree::log2()));
    assert!(arena.import_state(&legacy_snap).is_err());
}

#[test]
fn malformed_snapshots_are_rejected_without_mutation() {
    let mut w = Cnrw::new(NodeId(7));
    let before = w.export_state().to_pretty();
    assert!(w.import_state(&Value::Null).is_err());
    assert!(w
        .import_state(&Value::obj([("history", Value::Null)]))
        .is_err());
    assert_eq!(
        w.export_state().to_pretty(),
        before,
        "walker mutated on error"
    );
}
