//! Equivalence and stress tests for the lock-striped shared cache.
//!
//! Lock striping is a pure performance refactor of `SharedOsn`: these tests
//! pin that claim. (1) On a seeded workload the striped cache must return
//! bit-identical query results and hit counts to the single-lock
//! configuration (one stripe reproduces the old global mutex exactly, and a
//! plain `SimulatedOsn` is the ground truth both reduce to). (2) Under an
//! 8-thread hammer no cache update may be lost — every unique node charged
//! exactly once, global counters exactly consistent.

use std::collections::HashSet;
use std::sync::Arc;

use osn_sampling::prelude::*;

/// Deterministic mixed workload: a seeded, skewed sequence of node queries
/// (some nodes hot, some cold) over `n` nodes.
fn seeded_workload(n: usize, len: usize, seed: u64) -> Vec<NodeId> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            // xorshift64* keeps the workload independent of the crate's RNGs.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let r = state.wrapping_mul(0x2545_f491_4f6c_dd1d);
            // Square to skew toward low ids: hot head, cold tail.
            let x = (r >> 33) as f64 / (1u64 << 31) as f64;
            NodeId(((x * x * n as f64) as usize).min(n - 1) as u32)
        })
        .collect()
}

fn clustered_network() -> Arc<osn_sampling::graph::attributes::AttributedGraph> {
    Arc::new(osn_sampling::datasets::clustered_graph().network)
}

#[test]
fn striped_cache_is_bit_identical_to_single_lock() {
    let network = clustered_network();
    let n = network.graph.node_count();
    let workload = seeded_workload(n, 4_000, 0xC0FFEE);

    // Ground truth: the plain (unshared, unstriped) simulator.
    let mut plain = SimulatedOsn::new_shared(network.clone());
    let plain_results: Vec<Vec<NodeId>> = workload
        .iter()
        .map(|&u| plain.neighbors(u).unwrap().to_vec())
        .collect();

    for stripes in [1usize, 8, 64] {
        let shared = SharedOsn::with_stripes(SimulatedOsn::new_shared(network.clone()), stripes);
        for (i, &u) in workload.iter().enumerate() {
            let owned = shared.neighbors_owned(u).unwrap();
            assert_eq!(owned, plain_results[i], "stripes={stripes} query {i}");
        }
        // Identical accounting: issued / unique (charged) / cache hits.
        assert_eq!(
            shared.stats(),
            plain.stats(),
            "hit counts must match single-lock path at stripes={stripes}"
        );
        // Per-stripe counters decompose the same totals.
        let per: Vec<StripeStats> = shared.stripe_stats();
        assert_eq!(per.len(), stripes);
        assert_eq!(
            per.iter().map(|s| s.hits + s.misses).sum::<u64>(),
            plain.stats().issued
        );
    }
}

#[test]
fn striped_and_single_lock_agree_under_budget() {
    // Single-threaded budgeted replay: the striped client must refuse the
    // exact same query the single-lock client refuses.
    let network = clustered_network();
    let n = network.graph.node_count();
    let workload = seeded_workload(n, 2_000, 7);
    let run = |stripes: usize| {
        let mut c =
            SharedOsn::configured(SimulatedOsn::new_shared(network.clone()), stripes, Some(25));
        let outcomes: Vec<bool> = workload.iter().map(|&u| c.neighbors(u).is_ok()).collect();
        (outcomes, c.stats())
    };
    let (single, single_stats) = run(1);
    let (striped, striped_stats) = run(64);
    assert_eq!(single, striped);
    assert_eq!(single_stats, striped_stats);
    assert_eq!(single_stats.unique, 25);
}

#[test]
fn eight_thread_stress_loses_no_cache_updates() {
    let network = clustered_network();
    let n = network.graph.node_count();
    const THREADS: usize = 8;
    const QUERIES: usize = 5_000;

    for stripes in [1usize, 64] {
        let shared = SharedOsn::with_stripes(SimulatedOsn::new_shared(network.clone()), stripes);
        let per_thread: Vec<Vec<NodeId>> = (0..THREADS)
            .map(|t| seeded_workload(n, QUERIES, 0xABCD + t as u64))
            .collect();
        let expected_unique: HashSet<u32> = per_thread.iter().flatten().map(|u| u.0).collect();

        std::thread::scope(|scope| {
            for workload in &per_thread {
                let mut handle = shared.clone();
                scope.spawn(move || {
                    for &u in workload {
                        handle.neighbors(u).unwrap();
                    }
                });
            }
        });

        let stats = shared.global_stats();
        // No lost updates: every issued query is accounted, every distinct
        // node charged exactly once across all 8 threads, rest are hits.
        assert_eq!(
            stats.issued,
            (THREADS * QUERIES) as u64,
            "stripes={stripes}"
        );
        assert_eq!(
            stats.unique,
            expected_unique.len() as u64,
            "stripes={stripes}"
        );
        assert_eq!(stats.cache_hits, stats.issued - stats.unique);

        // The merged single-owner view agrees with the concurrent totals.
        let mut inner = shared.try_into_inner().expect("sole handle");
        assert_eq!(inner.stats(), stats);
        // Every expected node is cached: re-querying charges nothing new.
        for &id in &expected_unique {
            inner.neighbors(NodeId(id)).unwrap();
        }
        assert_eq!(inner.stats().unique, expected_unique.len() as u64);
    }
}

#[test]
fn eight_thread_shared_budget_never_oversells() {
    let network = clustered_network();
    let n = network.graph.node_count();
    const BUDGET: u64 = 40;

    let shared = SharedOsn::configured(SimulatedOsn::new_shared(network.clone()), 16, Some(BUDGET));
    std::thread::scope(|scope| {
        for t in 0..8u64 {
            let mut handle = shared.clone();
            let workload = seeded_workload(n, 2_000, 0xBEEF + t);
            scope.spawn(move || {
                for u in workload {
                    let _ = handle.neighbors(u); // refusals expected
                }
            });
        }
    });
    let stats = shared.global_stats();
    assert_eq!(stats.unique, BUDGET, "exactly the budget, never more");
    assert_eq!(shared.remaining_budget(), Some(0));
}
