//! Workspace smoke test: every walker completes a seeded walk on a small
//! generated graph, moves only along real edges, is deterministic under its
//! seed, and the history-aware walkers keep the SRW stationary distribution
//! (Theorem 1: visit frequency proportional to degree).

use std::collections::HashMap;
use std::sync::Arc;

use osn_sampling::graph::attributes::AttributedGraph;
use osn_sampling::graph::generators::erdos_renyi;
use osn_sampling::prelude::*;

fn small_network() -> Arc<AttributedGraph> {
    let g = erdos_renyi(60, 0.15, 42).expect("valid generator config");
    Arc::new(AttributedGraph::bare(g))
}

/// One instance of every walker the paper evaluates.
fn all_walkers(start: NodeId) -> Vec<Box<dyn RandomWalk>> {
    vec![
        Box::new(Srw::new(start)),
        Box::new(Mhrw::new(start)),
        Box::new(NbSrw::new(start)),
        Box::new(Cnrw::new(start)),
        Box::new(Gnrw::new(start, Box::new(ByDegree::new()))),
        Box::new(NbCnrw::new(start)),
    ]
}

#[test]
fn every_walker_completes_a_seeded_10k_step_walk() {
    let network = small_network();
    for mut walker in all_walkers(NodeId(0)) {
        let name = walker.name().to_string();
        let mut client = SimulatedOsn::new_shared(network.clone());
        let trace = WalkSession::new(WalkConfig::steps(10_000).with_seed(7))
            .run(walker.as_mut(), &mut client);
        assert_eq!(trace.len(), 10_000, "{name} finished early");

        // Every transition must follow a real edge (MHRW may self-loop on
        // rejection).
        let mut prev = trace.start;
        for &v in trace.nodes() {
            assert!(
                v == prev || network.graph.has_edge(prev, v),
                "{name} made an illegal move {prev} -> {v}"
            );
            prev = v;
        }
    }
}

#[test]
fn every_walker_is_deterministic_under_its_seed() {
    let network = small_network();
    for (mut a, mut b) in all_walkers(NodeId(3))
        .into_iter()
        .zip(all_walkers(NodeId(3)))
    {
        let name = a.name().to_string();
        let run = |w: &mut dyn RandomWalk| {
            let mut client = SimulatedOsn::new_shared(network.clone());
            WalkSession::new(WalkConfig::steps(2_000).with_seed(99)).run(w, &mut client)
        };
        assert_eq!(
            run(a.as_mut()).nodes(),
            run(b.as_mut()).nodes(),
            "{name} not deterministic under fixed seed"
        );
    }
}

/// Total variation distance between a trace's empirical visit distribution
/// and the degree-proportional stationary distribution `k_v / 2|E|`.
fn tv_distance_from_degree_stationary(network: &AttributedGraph, nodes: &[NodeId]) -> f64 {
    let mut visits: HashMap<u32, f64> = HashMap::new();
    for &v in nodes {
        *visits.entry(v.0).or_insert(0.0) += 1.0;
    }
    let total = nodes.len() as f64;
    let two_m = (2 * network.graph.edge_count()) as f64;
    network
        .graph
        .nodes()
        .map(|v| {
            let empirical = visits.get(&v.0).copied().unwrap_or(0.0) / total;
            let pi = network.graph.degree(v) as f64 / two_m;
            (empirical - pi).abs()
        })
        .sum::<f64>()
        / 2.0
}

#[test]
fn cnrw_and_gnrw_visit_frequency_tracks_degree() {
    // Theorem 1 sanity check: the history-aware walkers must keep SRW's
    // stationary distribution. 200k steps on a 60-node graph gives TV
    // distance well under 0.03 for an unbiased sampler; a biased one (e.g.
    // uniform) sits above 0.15 on this topology.
    let network = small_network();
    let walkers: Vec<(&str, Box<dyn RandomWalk>)> = vec![
        ("CNRW", Box::new(Cnrw::new(NodeId(0)))),
        (
            "GNRW",
            Box::new(Gnrw::new(NodeId(0), Box::new(ByDegree::new()))),
        ),
    ];
    for (name, mut walker) in walkers {
        let mut client = SimulatedOsn::new_shared(network.clone());
        let trace = WalkSession::new(WalkConfig::steps(200_000).with_seed(11))
            .run(walker.as_mut(), &mut client);
        let tv = tv_distance_from_degree_stationary(&network, trace.nodes());
        assert!(
            tv < 0.03,
            "{name} visit frequency far from degree-proportional: TV {tv}"
        );
    }
}
