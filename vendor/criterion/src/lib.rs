//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the API subset the workspace's `benches/` targets use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Throughput`],
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros — with a deliberately small measurement loop: warm up once, then
//! time batches until ~`MEASURE_MS` of wall clock has elapsed, and print
//! mean ns/iter (plus derived element throughput when configured).
//!
//! No statistics, plots, or disk output. The point is that `cargo bench`
//! compiles and runs the real workload deterministically without a network
//! registry; swap back to real criterion via `[workspace.dependencies]`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Soft wall-clock target per benchmark, in milliseconds.
const MEASURE_MS: u64 = 200;

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`, matching real criterion's display form.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// A parameter-only id (`{group}/{parameter}` in real criterion).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements (nodes, steps, …) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    test_mode: bool,
}

impl Bencher {
    /// Time repeated calls of `routine`: one warm-up call, then batches
    /// until the soft wall-clock budget is spent. In test mode (`cargo
    /// bench -- --test`, mirroring real criterion) the routine runs exactly
    /// once and no timing is attempted.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            let started = Instant::now();
            black_box(routine());
            self.iters_done = 1;
            self.elapsed = started.elapsed();
            return;
        }
        black_box(routine());
        let budget = Duration::from_millis(MEASURE_MS);
        let started = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            if started.elapsed() >= budget {
                break;
            }
        }
        self.iters_done = iters;
        self.elapsed = started.elapsed();
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    test_mode: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration workload for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id, &mut f);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run_one(&id, &mut |b: &mut Bencher| f(b, input));
        self
    }

    fn run_one(&self, id: &BenchmarkId, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            test_mode: self.test_mode,
        };
        f(&mut bencher);
        report(
            &format!("{}/{}", self.name, id.name),
            &bencher,
            self.throughput,
        );
    }

    /// End the group (kept for API compatibility; prints nothing extra).
    pub fn finish(self) {}
}

/// Entry point: hands out benchmark groups.
#[derive(Default)]
pub struct Criterion {
    test_mode: bool,
}

impl Criterion {
    /// Parse CLI arguments. The stand-in recognizes `--test` (run every
    /// routine exactly once without timing, as real criterion does for
    /// `cargo bench -- --test` smoke runs) and ignores everything else
    /// (`cargo bench -- <filter>` filters are not implemented).
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        self.test_mode = std::env::args().any(|a| a == "--test");
        self
    }

    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            test_mode: self.test_mode,
            _criterion: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            test_mode: self.test_mode,
        };
        f(&mut bencher);
        report(&id.name, &bencher, None);
        self
    }

    /// No-op summary hook, matching real criterion's API.
    pub fn final_summary(&mut self) {}
}

fn report(label: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    if bencher.iters_done == 0 {
        println!("{label}: no iterations recorded");
        return;
    }
    let ns_per_iter = bencher.elapsed.as_nanos() as f64 / bencher.iters_done as f64;
    let mut line = format!(
        "{label}: {:.1} ns/iter ({} iters)",
        ns_per_iter, bencher.iters_done
    );
    if let Some(t) = throughput {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        let per_sec = count as f64 / (ns_per_iter / 1e9);
        line.push_str(&format!(", {per_sec:.0} {unit}/s"));
    }
    println!("{line}");
}

/// Define a benchmark group function from target functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` from group functions, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(10));
        let mut calls = 0u64;
        group.bench_function(BenchmarkId::new("count", 10), |b| {
            b.iter(|| calls = calls.wrapping_add(1))
        });
        group.bench_with_input(BenchmarkId::new("input", "x"), &5u64, |b, &five| {
            b.iter(|| black_box(five * 2))
        });
        group.finish();
        assert!(calls > 0);
    }
}
