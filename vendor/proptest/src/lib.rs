//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing framework.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(..)]` header),
//! range and tuple [`Strategy`]s, [`Strategy::prop_map`], and the
//! [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from real proptest, deliberately accepted for an offline
//! build: cases are generated from a fixed deterministic seed sequence (no
//! `PROPTEST_*` env handling), and **failing cases are not shrunk** — the
//! failure report prints the case index so the run can be reproduced, since
//! generation is fully deterministic. Swap back to real proptest via
//! `[workspace.dependencies]` once a registry is available.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// The RNG driving test-case generation.
pub type TestRng = ChaCha12Rng;

/// Run-time configuration for a [`proptest!`] block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to generate per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of arbitrary values (generation only; no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// `Just(v)` always generates clones of `v`.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident)+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A B);
impl_tuple_strategy!(A B C);
impl_tuple_strategy!(A B C D);
impl_tuple_strategy!(A B C D E);
impl_tuple_strategy!(A B C D E F);

/// Derive the deterministic RNG for one test case.
///
/// Mixing a hash of the test name in keeps different tests on different
/// streams even though there is no global entropy source.
pub fn case_rng(test_name: &str, case_index: u32) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::seed_from_u64(h ^ ((case_index as u64) << 1))
}

/// Assert a condition inside a [`proptest!`] body; on failure the enclosing
/// case returns an error (reported with its case index) instead of
/// panicking mid-generation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Assert equality inside a [`proptest!`] body, optionally with a custom
/// message (formatted like `format!`, as in real proptest).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Define property tests. Supports the canonical form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0u64..100, y in arb_thing()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    (@cfg ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case_index in 0..config.cases {
                    let mut proptest_rng = $crate::case_rng(stringify!($name), case_index);
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut proptest_rng);)*
                    let outcome = (move || -> ::core::result::Result<(), String> {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(message) = outcome {
                        panic!(
                            "proptest case {case_index}/{} of `{}` failed: {message}",
                            config.cases,
                            stringify!($name),
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

pub mod prelude {
    //! Convenience re-exports mirroring `proptest::prelude`.
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn arb_even() -> impl Strategy<Value = u64> {
        (0u64..100).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in 0u64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn mapped_strategies_apply(e in arb_even()) {
            prop_assert_eq!(e % 2, 0);
        }

        #[test]
        fn tuples_compose((a, b) in (0u32..10, 10u32..20)) {
            prop_assert!(a < 10 && (10..20).contains(&b));
        }
    }

    #[test]
    fn determinism_across_runs() {
        let mut r1 = super::case_rng("t", 0);
        let mut r2 = super::case_rng("t", 0);
        use rand::RngCore;
        assert_eq!(r1.next_u64(), r2.next_u64());
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_report_case_index() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]

            fn always_fails(_x in 0u32..10) {
                prop_assert!(false, "intentional");
            }
        }
        always_fails();
    }
}
