//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This workspace builds in environments without access to a crates.io
//! registry, so the external `rand` dependency is replaced by this local
//! crate implementing exactly the API subset the workspace uses:
//!
//! * [`RngCore`] / [`SeedableRng`] / [`Rng`] traits;
//! * `gen`, `gen_range`, `gen_bool` with [`distributions::Standard`];
//! * [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! Algorithms are deliberately simple (widening-multiply range reduction,
//! 53-bit mantissa floats) but deterministic and statistically sound enough
//! for seeded simulation tests. Swap back to the real `rand` by editing
//! `[workspace.dependencies]` once a registry is available.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of random bits.
pub trait RngCore {
    /// Return the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Return the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
    /// Fill `dest` with consecutive [`next_u64`](Self::next_u64) outputs.
    ///
    /// Semantically identical to calling `next_u64` once per slot (callers
    /// can rely on that for reproducibility), but overridable so a concrete
    /// generator behind a `&mut dyn RngCore` can amortize per-draw dispatch
    /// into one virtual call per batch.
    fn fill_u64s(&mut self, dest: &mut [u64]) {
        for slot in dest {
            *slot = self.next_u64();
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn fill_u64s(&mut self, dest: &mut [u64]) {
        (**self).fill_u64s(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn fill_u64s(&mut self, dest: &mut [u64]) {
        (**self).fill_u64s(dest)
    }
}

/// The SplitMix64 generator (Steele, Lea & Flood): one 64-bit word of
/// state, an add-and-mix step per output. The workspace already uses the
/// same recurrence inside [`SeedableRng::seed_from_u64`]; exposing it as a
/// first-class generator gives batched consumers ([`RngCore::fill_u64s`])
/// the cheapest possible per-draw cost for non-cryptographic streams.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Expose the raw state word (the next draw is fully determined by it).
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuild from [`state`](Self::state) output, resuming the stream.
    pub fn from_state(state: u64) -> Self {
        SplitMix64 { state }
    }
}

impl RngCore for SplitMix64 {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[inline]
    fn fill_u64s(&mut self, dest: &mut [u64]) {
        // Monomorphic copy of the default loop: one virtual call per batch
        // when reached through `&mut dyn RngCore`.
        for slot in dest {
            *slot = self.next_u64();
        }
    }
}

impl SeedableRng for SplitMix64 {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        SplitMix64 {
            state: u64::from_le_bytes(seed),
        }
    }

    /// The seed *is* the state: `seed_from_u64(s)` starts the canonical
    /// SplitMix64 stream at `s`, matching the expansion used by every other
    /// generator's `seed_from_u64`.
    fn seed_from_u64(state: u64) -> Self {
        SplitMix64 { state }
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Seed material (a fixed-size byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Build the generator from seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build the generator from a `u64`, expanded with SplitMix64 — the
    /// conventional convenience constructor for reproducible simulations.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that describe a sampleable range for [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased-enough integer range reduction via 128-bit widening multiply.
#[inline]
fn reduce_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(reduce_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(reduce_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = distributions::unit_f64(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = distributions::unit_f64(rng) as f32;
        self.start + unit * (self.end - self.start)
    }
}

/// User-facing generator extension methods, blanket-implemented for every
/// [`RngCore`] (including trait objects).
pub trait Rng: RngCore {
    /// Sample a value from the [`distributions::Standard`] distribution
    /// (`f64` in `[0, 1)`, fair `bool`, full-width integers).
    #[inline]
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Sample uniformly from a range (`start..end` or `start..=end`).
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0,1]: {p}");
        distributions::unit_f64(self) < p
    }

    /// Fill `dest` with values from [`distributions::Standard`].
    #[inline]
    fn fill<T: Copy>(&mut self, dest: &mut [T])
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        for slot in dest.iter_mut() {
            *slot = self.gen();
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod distributions {
    //! The sampling distributions the workspace uses (`Standard` only).

    use super::RngCore;

    /// A distribution over values of `T`.
    pub trait Distribution<T> {
        /// Draw one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution: `[0, 1)` for floats, uniform over all
    /// values for integers, fair coin for `bool`.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    /// Uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    #[inline]
    pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    impl Distribution<f64> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_f64(rng)
        }
    }

    impl Distribution<f32> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            unit_f64(rng) as f32
        }
    }

    impl Distribution<bool> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<u32> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<u64> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<usize> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }
}

pub mod seq {
    //! Sequence-related extensions (`shuffle`, `choose`).

    use super::{Rng, RngCore};

    /// Extension methods on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly pick a reference to one element (`None` when empty).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    //! Convenience re-exports mirroring `rand::prelude`.
    pub use super::distributions::Distribution;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SampleRange, SeedableRng, SplitMix64};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // A weak LCG is fine for exercising the trait plumbing.
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = rng.gen_range(5..=5);
            assert_eq!(w, 5);
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut rng = Counter(99);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut rng = Counter(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = Counter(1);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v: usize = dyn_rng.gen_range(0..10);
        assert!(v < 10);
    }
}
