//! Offline stand-in for the [`rand_chacha`](https://crates.io/crates/rand_chacha)
//! crate.
//!
//! Exposes the `ChaCha8Rng` / `ChaCha12Rng` / `ChaCha20Rng` type names the
//! workspace seeds its reproducible walks with. The stream cipher core is
//! replaced by **xoshiro256++** (Blackman & Vigna) — a fast, high-quality
//! non-cryptographic generator. Output bytes therefore differ from the real
//! ChaCha streams, but every property the workspace relies on holds:
//! deterministic under [`SeedableRng::seed_from_u64`], cloneable mid-stream,
//! and statistically uniform. Swap back to the real crate by editing
//! `[workspace.dependencies]` once a registry is available.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

macro_rules! chacha_standin {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Debug, PartialEq, Eq)]
        pub struct $name {
            s: [u64; 4],
        }

        impl $name {
            /// Export the raw generator state for snapshot/resume.
            ///
            /// Stand-in extension (the real `rand_chacha` exposes
            /// `get_seed`/`get_word_pos` instead): the four state words
            /// fully determine the stream, so
            /// [`from_state`](Self::from_state)`(get_state())` continues
            /// bit-identically.
            pub fn get_state(&self) -> [u64; 4] {
                self.s
            }

            /// Rebuild a generator from [`get_state`](Self::get_state)
            /// output, resuming its stream exactly. The all-zero state
            /// (unreachable from any seeded generator) is mapped to the
            /// same substitute constants as `from_seed`.
            pub fn from_state(s: [u64; 4]) -> Self {
                if s == [0; 4] {
                    return Self::from_seed([0u8; 32]);
                }
                $name { s }
            }
        }

        impl RngCore for $name {
            #[inline]
            fn next_u32(&mut self) -> u32 {
                (self.next_u64() >> 32) as u32
            }

            #[inline]
            fn next_u64(&mut self) -> u64 {
                // xoshiro256++ step.
                let result = self.s[0]
                    .wrapping_add(self.s[3])
                    .rotate_left(23)
                    .wrapping_add(self.s[0]);
                let t = self.s[1] << 17;
                self.s[2] ^= self.s[0];
                self.s[3] ^= self.s[1];
                self.s[1] ^= self.s[2];
                self.s[0] ^= self.s[3];
                self.s[2] ^= t;
                self.s[3] = self.s[3].rotate_left(45);
                result
            }

            #[inline]
            fn fill_u64s(&mut self, dest: &mut [u64]) {
                // Monomorphic loop: callers behind `&mut dyn RngCore` pay
                // one virtual call per batch instead of one per draw. Same
                // stream as repeated `next_u64` (guaranteed by the trait).
                for slot in dest {
                    *slot = self.next_u64();
                }
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let mut s = [0u64; 4];
                for (i, chunk) in seed.chunks_exact(8).enumerate() {
                    s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
                }
                // xoshiro must not start from the all-zero state.
                if s == [0; 4] {
                    s = [
                        0x9E37_79B9_7F4A_7C15,
                        0x6A09_E667_F3BC_C909,
                        0xBB67_AE85_84CA_A73B,
                        0x3C6E_F372_FE94_F82B,
                    ];
                }
                let mut rng = $name { s };
                // Decorrelate structured seeds (e.g. mostly-zero byte arrays).
                for _ in 0..8 {
                    rng.next_u64();
                }
                rng
            }
        }
    };
}

chacha_standin! {
    /// Stand-in for `rand_chacha::ChaCha8Rng` (xoshiro256++ core).
    ChaCha8Rng
}
chacha_standin! {
    /// Stand-in for `rand_chacha::ChaCha12Rng` (xoshiro256++ core).
    ChaCha12Rng
}
chacha_standin! {
    /// Stand-in for `rand_chacha::ChaCha20Rng` (xoshiro256++ core).
    ChaCha20Rng
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha12Rng::seed_from_u64(42);
        let mut b = ChaCha12Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha12Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn clone_preserves_stream() {
        let mut a = ChaCha12Rng::seed_from_u64(7);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut a = ChaCha12Rng::seed_from_u64(99);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = ChaCha12Rng::from_state(a.get_state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = ChaCha12Rng::from_seed([0u8; 32]);
        let x = r.next_u64();
        let y = r.next_u64();
        assert_ne!(x, y);
    }

    #[test]
    fn rough_uniformity() {
        use rand::Rng;
        let mut r = ChaCha12Rng::seed_from_u64(1);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[r.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!(c > 800 && c < 1200, "bucket count {c}");
        }
    }
}
